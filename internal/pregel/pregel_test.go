package pregel

import (
	"errors"
	"math/rand"
	"testing"

	"dualsim/internal/graph"
)

func lineGraph(n int) *graph.Graph {
	var edges [][2]graph.VertexID
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]graph.VertexID{graph.VertexID(i), graph.VertexID(i + 1)})
	}
	return graph.MustNewGraph(n, edges)
}

// TestMessagePropagation floods a token from vertex 0 down a line graph,
// one hop per superstep.
func TestMessagePropagation(t *testing.T) {
	const n = 10
	g := lineGraph(n)
	compute := func(ctx *Context, v graph.VertexID, msgs [][]uint32) error {
		if ctx.Superstep() == 0 {
			if v == 0 {
				ctx.Send(1, []uint32{0})
			}
			return nil
		}
		for range msgs {
			ctx.AddCount(1)
			if int(v)+1 < n {
				ctx.Send(v+1, []uint32{uint32(v)})
			}
		}
		return nil
	}
	for _, workers := range []int{1, 3} {
		eng := NewEngine(g, compute, Config{Workers: workers})
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Count != n-1 {
			t.Errorf("workers=%d: count = %d, want %d", workers, stats.Count, n-1)
		}
		if stats.Supersteps != n {
			t.Errorf("workers=%d: supersteps = %d, want %d", workers, stats.Supersteps, n)
		}
		if stats.TotalMessages != n-1 {
			t.Errorf("workers=%d: messages = %d, want %d", workers, stats.TotalMessages, n-1)
		}
	}
}

func TestMemoryOverrun(t *testing.T) {
	g := lineGraph(4)
	// Every vertex floods every vertex each superstep: blows a tiny budget.
	compute := func(ctx *Context, v graph.VertexID, msgs [][]uint32) error {
		if ctx.Superstep() > 3 {
			return nil
		}
		for i := 0; i < g.NumVertices(); i++ {
			ctx.Send(graph.VertexID(i), []uint32{1, 2, 3, 4})
		}
		return nil
	}
	eng := NewEngine(g, compute, Config{Workers: 2, MemoryPerWorker: 64})
	_, err := eng.Run()
	if !errors.Is(err, ErrMemoryOverrun) {
		t.Fatalf("want ErrMemoryOverrun, got %v", err)
	}
}

func TestComputeErrorPropagates(t *testing.T) {
	g := lineGraph(3)
	boom := errors.New("boom")
	compute := func(ctx *Context, v graph.VertexID, msgs [][]uint32) error {
		return boom
	}
	eng := NewEngine(g, compute, Config{Workers: 2})
	if _, err := eng.Run(); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestMaxSupersteps(t *testing.T) {
	g := lineGraph(2)
	// Ping-pong forever.
	compute := func(ctx *Context, v graph.VertexID, msgs [][]uint32) error {
		if ctx.Superstep() == 0 && v == 0 {
			ctx.Send(1, []uint32{1})
			return nil
		}
		for range msgs {
			ctx.Send(1-v, []uint32{1})
		}
		return nil
	}
	eng := NewEngine(g, compute, Config{Workers: 1, MaxSupersteps: 5})
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 5 {
		t.Errorf("supersteps = %d, want 5", stats.Supersteps)
	}
}

func TestStatsPerStep(t *testing.T) {
	g := lineGraph(5)
	compute := func(ctx *Context, v graph.VertexID, msgs [][]uint32) error {
		if ctx.Superstep() == 0 {
			ctx.Send(v, []uint32{uint32(v)}) // everyone messages itself once
		}
		return nil
	}
	eng := NewEngine(g, compute, Config{Workers: 2})
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.MessagesPerStep) == 0 || stats.MessagesPerStep[0] != 5 {
		t.Errorf("per-step messages = %v", stats.MessagesPerStep)
	}
	if stats.TotalMsgBytes == 0 {
		t.Errorf("message bytes not accounted")
	}
}

func TestDeterministicCountAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var edges [][2]graph.VertexID
	for i := 0; i < 400; i++ {
		edges = append(edges, [2]graph.VertexID{
			graph.VertexID(rng.Intn(80)), graph.VertexID(rng.Intn(80)),
		})
	}
	g := graph.MustNewGraph(80, edges)
	// Count edges via messages: each vertex notifies higher neighbors.
	compute := func(ctx *Context, v graph.VertexID, msgs [][]uint32) error {
		if ctx.Superstep() == 0 {
			for _, w := range g.Adj(v) {
				if w > v {
					ctx.Send(w, []uint32{uint32(v)})
				}
			}
			return nil
		}
		ctx.AddCount(uint64(len(msgs)))
		return nil
	}
	var counts []uint64
	for _, workers := range []int{1, 2, 7} {
		eng := NewEngine(g, compute, Config{Workers: workers})
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, stats.Count)
	}
	want := uint64(g.NumEdges())
	for i, c := range counts {
		if c != want {
			t.Errorf("run %d: count %d, want %d", i, c, want)
		}
	}
}
