// Package mr is a miniature MapReduce engine: hash-partitioned map output
// spilled to disk, per-reducer external sort, and grouped reduce — the
// substrate on which the TwinTwigJoin baseline executes. It simulates a
// cluster inside one process: "workers" are goroutines with individual
// memory budgets, map output is really written to and shuffled through
// files, and two failure modes of the real frameworks are modeled — Hadoop
// spill exhaustion and Spark's oversized-partition failure.
package mr

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrPartitionTooLarge models Spark SQL's failure when a shuffle partition
// block exceeds its limit (the paper's TTJ-SparkSQL failures).
var ErrPartitionTooLarge = errors.New("mr: shuffle partition exceeds worker memory limit")

// ErrSpillExhausted models Hadoop's spill failure when intermediate results
// outgrow the configured spill budget (the paper's TTJ failure on LJ-q3).
var ErrSpillExhausted = errors.New("mr: intermediate results exceed spill budget")

// KV is one key/value record.
type KV struct {
	Key   []byte
	Value []byte
}

// Emit receives records from mappers and reducers.
type Emit func(key, value []byte) error

// Mapper transforms one input record.
type Mapper func(rec []byte, emit Emit) error

// Reducer folds all values sharing a key.
type Reducer func(key []byte, values [][]byte, emit Emit) error

// Config describes the simulated cluster.
type Config struct {
	// Workers is the number of simulated machines (default 1).
	Workers int
	// TempDir holds shuffle and output files (required).
	TempDir string
	// MemoryPerWorker caps a reducer's in-memory shuffle data in bytes;
	// beyond it, data spills to disk (Hadoop) or the job fails
	// (FailOnOverflow, Spark). Zero means unlimited.
	MemoryPerWorker int64
	// FailOnOverflow makes partitions larger than MemoryPerWorker fatal
	// instead of spilling.
	FailOnOverflow bool
	// MaxSpillBytes caps total spilled bytes per job (zero = unlimited).
	MaxSpillBytes int64
}

// Counters aggregates job statistics.
type Counters struct {
	MapInput     uint64
	MapOutput    uint64
	ReduceOutput uint64
	ShuffleBytes uint64
	SpilledBytes uint64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.MapInput += other.MapInput
	c.MapOutput += other.MapOutput
	c.ReduceOutput += other.ReduceOutput
	c.ShuffleBytes += other.ShuffleBytes
	c.SpilledBytes += other.SpilledBytes
}

// Dataset is a partitioned on-disk record collection.
type Dataset struct {
	parts []string // one file per partition
}

// NumPartitions returns the partition count.
func (d *Dataset) NumPartitions() int { return len(d.parts) }

// writeRecord writes a length-prefixed record.
func writeRecord(w io.Writer, rec []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(rec)
	return err
}

func readRecord(r *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("mr: truncated record: %w", err)
	}
	return buf, nil
}

// CreateDataset materializes records into partitions under dir.
func CreateDataset(dir, name string, partitions int, records [][]byte) (*Dataset, error) {
	if partitions < 1 {
		partitions = 1
	}
	d := &Dataset{}
	writers := make([]*bufio.Writer, partitions)
	files := make([]*os.File, partitions)
	for i := 0; i < partitions; i++ {
		path := filepath.Join(dir, fmt.Sprintf("%s-%05d.part", name, i))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		files[i] = f
		writers[i] = bufio.NewWriter(f)
		d.parts = append(d.parts, path)
	}
	for i, rec := range records {
		if err := writeRecord(writers[i%partitions], rec); err != nil {
			return nil, err
		}
	}
	for i := range writers {
		if err := writers[i].Flush(); err != nil {
			return nil, err
		}
		if err := files[i].Close(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Scan streams every record of the dataset to fn.
func (d *Dataset) Scan(fn func(rec []byte) error) error {
	for _, path := range d.parts {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		r := bufio.NewReaderSize(f, 1<<16)
		var buf []byte
		for {
			rec, err := readRecord(r, buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return err
			}
			buf = rec
			if err := fn(rec); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// Count returns the number of records in the dataset.
func (d *Dataset) Count() (uint64, error) {
	var n uint64
	err := d.Scan(func([]byte) error { n++; return nil })
	return n, err
}

// Remove deletes the dataset's files.
func (d *Dataset) Remove() {
	for _, p := range d.parts {
		os.Remove(p)
	}
}

// Job is one MapReduce round.
type Job struct {
	Name   string
	Map    Mapper
	Reduce Reducer
	// Combine, when non-nil, pre-aggregates map output per mapper task
	// before the shuffle (a Hadoop combiner), reducing shuffle volume for
	// aggregation-shaped jobs. It must be semantically idempotent with
	// Reduce over partial groups.
	Combine Reducer
}

var jobSeq atomic.Uint64

// Run executes a job over the inputs and returns the output dataset. All
// inputs are mapped; the union of map output is shuffled and reduced.
func Run(cfg Config, job Job, inputs ...*Dataset) (*Dataset, Counters, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.TempDir == "" {
		return nil, Counters{}, fmt.Errorf("mr: TempDir required")
	}
	id := jobSeq.Add(1)
	jobDir := filepath.Join(cfg.TempDir, fmt.Sprintf("job-%s-%d", sanitize(job.Name), id))
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		return nil, Counters{}, err
	}

	var counters Counters
	shuffleFiles, mapCounters, err := mapPhase(cfg, job, jobDir, inputs)
	counters.Add(mapCounters)
	if err != nil {
		return nil, counters, err
	}
	out, redCounters, err := reducePhase(cfg, job, jobDir, shuffleFiles)
	counters.Add(redCounters)
	if err != nil {
		return nil, counters, err
	}
	return out, counters, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '/' || r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// mapPhase runs mappers over input partitions, hash-partitioning emitted
// pairs into per-reducer shuffle files.
func mapPhase(cfg Config, job Job, jobDir string, inputs []*Dataset) ([][]string, Counters, error) {
	var counters Counters
	shuffle := make([][]string, cfg.Workers) // [reducer] -> files
	var shuffleMu sync.Mutex

	type task struct {
		path string
		id   int
	}
	var tasks []task
	for _, in := range inputs {
		for _, p := range in.parts {
			tasks = append(tasks, task{path: p, id: len(tasks)})
		}
	}

	var mapIn, mapOut, shufBytes atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for _, tk := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(tk task) {
			defer func() { <-sem; wg.Done() }()
			files, err := runMapTask(cfg, job, jobDir, tk.path, tk.id, &mapIn, &mapOut, &shufBytes)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			shuffleMu.Lock()
			for r, f := range files {
				if f != "" {
					shuffle[r] = append(shuffle[r], f)
				}
			}
			shuffleMu.Unlock()
		}(tk)
	}
	wg.Wait()
	counters.MapInput = mapIn.Load()
	counters.MapOutput = mapOut.Load()
	counters.ShuffleBytes = shufBytes.Load()
	if v := firstErr.Load(); v != nil {
		return nil, counters, v.(error)
	}
	return shuffle, counters, nil
}

func runMapTask(cfg Config, job Job, jobDir, inputPath string, taskID int, mapIn, mapOut, shufBytes *atomic.Uint64) ([]string, error) {
	writers := make([]*bufio.Writer, cfg.Workers)
	files := make([]*os.File, cfg.Workers)
	names := make([]string, cfg.Workers)
	getWriter := func(r int) (*bufio.Writer, error) {
		if writers[r] == nil {
			name := filepath.Join(jobDir, fmt.Sprintf("shuf-m%d-r%d.bin", taskID, r))
			f, err := os.Create(name)
			if err != nil {
				return nil, err
			}
			files[r] = f
			writers[r] = bufio.NewWriterSize(f, 1<<15)
			names[r] = name
		}
		return writers[r], nil
	}
	shuffleOut := func(key, value []byte) error {
		r := int(fnv1a(key) % uint64(cfg.Workers))
		w, err := getWriter(r)
		if err != nil {
			return err
		}
		rec := encodeKV(key, value)
		mapOut.Add(1)
		shufBytes.Add(uint64(len(rec)))
		return writeRecord(w, rec)
	}

	emit := shuffleOut
	var pending map[string][][]byte
	if job.Combine != nil {
		pending = make(map[string][][]byte)
		emit = func(key, value []byte) error {
			pending[string(key)] = append(pending[string(key)], append([]byte(nil), value...))
			return nil
		}
	}

	in := &Dataset{parts: []string{inputPath}}
	err := in.Scan(func(rec []byte) error {
		mapIn.Add(1)
		return job.Map(rec, emit)
	})
	if err == nil && job.Combine != nil {
		for key, values := range pending {
			if cerr := job.Combine([]byte(key), values, shuffleOut); cerr != nil {
				err = cerr
				break
			}
		}
	}
	for r := range writers {
		if writers[r] != nil {
			if ferr := writers[r].Flush(); ferr != nil && err == nil {
				err = ferr
			}
			if cerr := files[r].Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return names, nil
}

func fnv1a(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func encodeKV(key, value []byte) []byte {
	rec := make([]byte, 4+len(key)+len(value))
	binary.LittleEndian.PutUint32(rec, uint32(len(key)))
	copy(rec[4:], key)
	copy(rec[4+len(key):], value)
	return rec
}

// DecodeKV splits an output record of a job into its key and value.
func DecodeKV(rec []byte) (key, value []byte, err error) {
	if len(rec) < 4 {
		return nil, nil, fmt.Errorf("mr: short kv record")
	}
	kl := binary.LittleEndian.Uint32(rec)
	if int(4+kl) > len(rec) {
		return nil, nil, fmt.Errorf("mr: corrupt kv record")
	}
	return rec[4 : 4+kl], rec[4+kl:], nil
}

// reducePhase sorts each reducer's shuffle input (spilling or failing per
// config) and folds groups through the reducer.
func reducePhase(cfg Config, job Job, jobDir string, shuffle [][]string) (*Dataset, Counters, error) {
	var counters Counters
	out := &Dataset{parts: make([]string, cfg.Workers)}
	var spilled, reduceOut atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for r := 0; r < cfg.Workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outPath := filepath.Join(jobDir, fmt.Sprintf("out-%05d.part", r))
			out.parts[r] = outPath
			if err := runReduceTask(cfg, job, jobDir, r, shuffle[r], outPath, &spilled, &reduceOut); err != nil {
				firstErr.CompareAndSwap(nil, err)
			}
		}(r)
	}
	wg.Wait()
	counters.SpilledBytes = spilled.Load()
	counters.ReduceOutput = reduceOut.Load()
	if v := firstErr.Load(); v != nil {
		return nil, counters, v.(error)
	}
	return out, counters, nil
}

func runReduceTask(cfg Config, job Job, jobDir string, r int, inFiles []string, outPath string, spilled, reduceOut *atomic.Uint64) error {
	outF, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer outF.Close()
	outW := bufio.NewWriterSize(outF, 1<<15)
	emit := func(key, value []byte) error {
		reduceOut.Add(1)
		return writeRecord(outW, encodeKV(key, value))
	}

	sorter := newKVSorter(cfg, jobDir, r, spilled)
	in := &Dataset{parts: inFiles}
	err = in.Scan(func(rec []byte) error {
		cp := make([]byte, len(rec))
		copy(cp, rec)
		return sorter.add(cp)
	})
	if err != nil {
		return err
	}
	// Stream groups to the reducer.
	var curKey []byte
	var values [][]byte
	flushGroup := func() error {
		if curKey == nil {
			return nil
		}
		err := job.Reduce(curKey, values, emit)
		curKey, values = nil, values[:0]
		return err
	}
	err = sorter.merge(func(rec []byte) error {
		key, value, err := DecodeKV(rec)
		if err != nil {
			return err
		}
		if curKey == nil || !bytes.Equal(key, curKey) {
			if err := flushGroup(); err != nil {
				return err
			}
			curKey = append([]byte(nil), key...)
		}
		values = append(values, append([]byte(nil), value...))
		return nil
	})
	if err != nil {
		return err
	}
	if err := flushGroup(); err != nil {
		return err
	}
	return outW.Flush()
}

// kvSorter buffers records up to the memory budget, spilling sorted runs.
type kvSorter struct {
	cfg     Config
	dir     string
	reducer int
	buf     [][]byte
	bufSize int64
	runs    []string
	spilled *atomic.Uint64
	total   int64
}

func newKVSorter(cfg Config, dir string, reducer int, spilled *atomic.Uint64) *kvSorter {
	return &kvSorter{cfg: cfg, dir: dir, reducer: reducer, spilled: spilled}
}

func (s *kvSorter) add(rec []byte) error {
	s.buf = append(s.buf, rec)
	s.bufSize += int64(len(rec))
	s.total += int64(len(rec))
	if s.cfg.MemoryPerWorker > 0 && s.bufSize > s.cfg.MemoryPerWorker {
		if s.cfg.FailOnOverflow {
			return fmt.Errorf("%w: reducer %d holds %d bytes (limit %d)",
				ErrPartitionTooLarge, s.reducer, s.bufSize, s.cfg.MemoryPerWorker)
		}
		return s.spill()
	}
	return nil
}

func (s *kvSorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	if s.cfg.MaxSpillBytes > 0 && int64(s.spilled.Load())+s.bufSize > s.cfg.MaxSpillBytes {
		return fmt.Errorf("%w: reducer %d (spilled %d + %d > %d)",
			ErrSpillExhausted, s.reducer, s.spilled.Load(), s.bufSize, s.cfg.MaxSpillBytes)
	}
	s.sortBuf()
	path := filepath.Join(s.dir, fmt.Sprintf("spill-r%d-%d.bin", s.reducer, len(s.runs)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<15)
	for _, rec := range s.buf {
		if err := writeRecord(w, rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	s.spilled.Add(uint64(s.bufSize))
	s.runs = append(s.runs, path)
	s.buf = s.buf[:0]
	s.bufSize = 0
	return nil
}

func (s *kvSorter) sortBuf() {
	sort.Slice(s.buf, func(i, j int) bool { return bytes.Compare(s.buf[i], s.buf[j]) < 0 })
}

// merge streams all records in key order.
func (s *kvSorter) merge(fn func(rec []byte) error) error {
	if len(s.runs) == 0 {
		s.sortBuf()
		for _, rec := range s.buf {
			if err := fn(rec); err != nil {
				return err
			}
		}
		return nil
	}
	if err := s.spill(); err != nil {
		return err
	}
	defer func() {
		for _, p := range s.runs {
			os.Remove(p)
		}
	}()
	type cursor struct {
		r   *bufio.Reader
		f   *os.File
		rec []byte
	}
	var cursors []*cursor
	for _, path := range s.runs {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		c := &cursor{f: f, r: bufio.NewReaderSize(f, 1<<15)}
		rec, err := readRecord(c.r, nil)
		if err == io.EOF {
			f.Close()
			continue
		}
		if err != nil {
			f.Close()
			return err
		}
		c.rec = append([]byte(nil), rec...)
		cursors = append(cursors, c)
	}
	for len(cursors) > 0 {
		best := 0
		for i := 1; i < len(cursors); i++ {
			if bytes.Compare(cursors[i].rec, cursors[best].rec) < 0 {
				best = i
			}
		}
		if err := fn(cursors[best].rec); err != nil {
			return err
		}
		rec, err := readRecord(cursors[best].r, nil)
		if err == io.EOF {
			cursors[best].f.Close()
			cursors = append(cursors[:best], cursors[best+1:]...)
			continue
		}
		if err != nil {
			return err
		}
		cursors[best].rec = append(cursors[best].rec[:0], rec...)
	}
	return nil
}
