package mr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func wordCountJob() Job {
	return Job{
		Name: "wordcount",
		Map: func(rec []byte, emit Emit) error {
			for _, w := range strings.Fields(string(rec)) {
				if err := emit([]byte(w), []byte{1}); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit Emit) error {
			n := 0
			for _, v := range values {
				n += int(v[0])
			}
			return emit(key, []byte(strconv.Itoa(n)))
		},
	}
}

func collect(t *testing.T, d *Dataset) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := d.Scan(func(rec []byte) error {
		k, v, err := DecodeKV(rec)
		if err != nil {
			return err
		}
		out[string(k)] = string(v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWordCount(t *testing.T) {
	dir := t.TempDir()
	input, err := CreateDataset(dir, "in", 3, [][]byte{
		[]byte("a b a"), []byte("b c"), []byte("a"), []byte("c c c"),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, counters, err := Run(Config{Workers: 4, TempDir: dir}, wordCountJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, out)
	want := map[string]string{"a": "3", "b": "2", "c": "4"}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%s] = %s, want %s (all: %v)", k, got[k], v, got)
		}
	}
	if counters.MapInput != 4 || counters.MapOutput != 9 || counters.ReduceOutput != 3 {
		t.Errorf("counters: %+v", counters)
	}
}

func TestSingleWorker(t *testing.T) {
	dir := t.TempDir()
	input, err := CreateDataset(dir, "in", 1, [][]byte{[]byte("x y x")})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Run(Config{Workers: 1, TempDir: dir}, wordCountJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, out)
	if got["x"] != "2" || got["y"] != "1" {
		t.Errorf("got %v", got)
	}
}

func TestSpillPath(t *testing.T) {
	dir := t.TempDir()
	var records [][]byte
	for i := 0; i < 500; i++ {
		records = append(records, []byte(fmt.Sprintf("key%03d", i%50)))
	}
	input, err := CreateDataset(dir, "in", 2, records)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 2, TempDir: dir, MemoryPerWorker: 256} // force spills
	out, counters, err := Run(cfg, wordCountJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	if counters.SpilledBytes == 0 {
		t.Error("expected spills with a 256-byte budget")
	}
	got := collect(t, out)
	if len(got) != 50 {
		t.Errorf("distinct keys = %d, want 50", len(got))
	}
	for k, v := range got {
		if v != "10" {
			t.Errorf("count[%s] = %s, want 10", k, v)
		}
	}
}

func TestFailOnOverflow(t *testing.T) {
	dir := t.TempDir()
	var records [][]byte
	for i := 0; i < 200; i++ {
		records = append(records, []byte("hot hot hot hot"))
	}
	input, err := CreateDataset(dir, "in", 1, records)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 1, TempDir: dir, MemoryPerWorker: 128, FailOnOverflow: true}
	_, _, err = Run(cfg, wordCountJob(), input)
	if !errors.Is(err, ErrPartitionTooLarge) {
		t.Fatalf("want ErrPartitionTooLarge, got %v", err)
	}
}

func TestSpillBudgetExhausted(t *testing.T) {
	dir := t.TempDir()
	var records [][]byte
	for i := 0; i < 2000; i++ {
		records = append(records, []byte(fmt.Sprintf("key%04d filler filler", i)))
	}
	input, err := CreateDataset(dir, "in", 1, records)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 1, TempDir: dir, MemoryPerWorker: 512, MaxSpillBytes: 2048}
	_, _, err = Run(cfg, wordCountJob(), input)
	if !errors.Is(err, ErrSpillExhausted) {
		t.Fatalf("want ErrSpillExhausted, got %v", err)
	}
}

func TestChainedJobs(t *testing.T) {
	// Round 1: word count. Round 2: histogram of counts.
	dir := t.TempDir()
	input, err := CreateDataset(dir, "in", 2, [][]byte{
		[]byte("a b"), []byte("a b"), []byte("a c"),
	})
	if err != nil {
		t.Fatal(err)
	}
	counts, _, err := Run(Config{Workers: 2, TempDir: dir}, wordCountJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	histogram := Job{
		Name: "histogram",
		Map: func(rec []byte, emit Emit) error {
			_, v, err := DecodeKV(rec)
			if err != nil {
				return err
			}
			return emit(v, []byte{1})
		},
		Reduce: func(key []byte, values [][]byte, emit Emit) error {
			return emit(key, []byte(strconv.Itoa(len(values))))
		},
	}
	out, _, err := Run(Config{Workers: 2, TempDir: dir}, histogram, counts)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, out)
	// a:3, b:2, c:1 -> one word with count 3, one with 2, one with 1.
	if got["3"] != "1" || got["2"] != "1" || got["1"] != "1" {
		t.Errorf("histogram = %v", got)
	}
}

func TestMultipleInputs(t *testing.T) {
	dir := t.TempDir()
	in1, err := CreateDataset(dir, "in1", 1, [][]byte{[]byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	in2, err := CreateDataset(dir, "in2", 1, [][]byte{[]byte("a b")})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Run(Config{Workers: 2, TempDir: dir}, wordCountJob(), in1, in2)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, out)
	if got["a"] != "2" || got["b"] != "1" {
		t.Errorf("got %v", got)
	}
}

func TestDatasetCountAndRemove(t *testing.T) {
	dir := t.TempDir()
	d, err := CreateDataset(dir, "d", 3, [][]byte{[]byte("1"), []byte("2"), []byte("3"), []byte("4")})
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.Count()
	if err != nil || n != 4 {
		t.Fatalf("count = %d err=%v", n, err)
	}
	if d.NumPartitions() != 3 {
		t.Fatalf("partitions = %d", d.NumPartitions())
	}
	d.Remove()
	if _, err := d.Count(); err == nil {
		t.Fatal("count after remove should fail")
	}
}

func TestReduceGroupsSeeSortedKeys(t *testing.T) {
	dir := t.TempDir()
	var records [][]byte
	for i := 0; i < 100; i++ {
		records = append(records, []byte(fmt.Sprintf("k%02d", 99-i)))
	}
	input, err := CreateDataset(dir, "in", 1, records)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	job := Job{
		Name: "order",
		Map: func(rec []byte, emit Emit) error {
			return emit(rec, nil)
		},
		Reduce: func(key []byte, values [][]byte, emit Emit) error {
			keys = append(keys, string(key))
			return nil
		},
	}
	if _, _, err := Run(Config{Workers: 1, TempDir: dir}, job, input); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("reducer saw unsorted keys: %v", keys[:5])
	}
	if len(keys) != 100 {
		t.Errorf("distinct keys = %d, want 100", len(keys))
	}
}

func TestBinaryKeysSurvive(t *testing.T) {
	dir := t.TempDir()
	var records [][]byte
	for i := 0; i < 20; i++ {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(i*1000))
		records = append(records, b[:])
	}
	input, err := CreateDataset(dir, "in", 2, records)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{
		Name: "binary",
		Map: func(rec []byte, emit Emit) error {
			return emit(rec, rec)
		},
		Reduce: func(key []byte, values [][]byte, emit Emit) error {
			return emit(key, values[0])
		},
	}
	out, _, err := Run(Config{Workers: 3, TempDir: dir}, job, input)
	if err != nil {
		t.Fatal(err)
	}
	n, err := out.Count()
	if err != nil || n != 20 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestRunRequiresTempDir(t *testing.T) {
	if _, _, err := Run(Config{}, wordCountJob()); err == nil {
		t.Fatal("missing TempDir accepted")
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	dir := t.TempDir()
	var records [][]byte
	for i := 0; i < 300; i++ {
		records = append(records, []byte("hot cold hot"))
	}
	input, err := CreateDataset(dir, "in", 2, records)
	if err != nil {
		t.Fatal(err)
	}
	plain := wordCountJob()
	out1, c1, err := Run(Config{Workers: 2, TempDir: dir}, plain, input)
	if err != nil {
		t.Fatal(err)
	}
	combined := wordCountJob()
	combined.Combine = func(key []byte, values [][]byte, emit Emit) error {
		n := 0
		for _, v := range values {
			n += int(v[0])
		}
		// Re-encode the partial sum as repeated single-byte counts capped
		// at 255 per value to stay within the toy value format.
		for n > 0 {
			chunk := n
			if chunk > 255 {
				chunk = 255
			}
			if err := emit(key, []byte{byte(chunk)}); err != nil {
				return err
			}
			n -= chunk
		}
		return nil
	}
	out2, c2, err := Run(Config{Workers: 2, TempDir: dir}, combined, input)
	if err != nil {
		t.Fatal(err)
	}
	got1 := collect(t, out1)
	got2 := collect(t, out2)
	if got1["hot"] != "600" || got2["hot"] != got1["hot"] || got2["cold"] != got1["cold"] {
		t.Fatalf("combined run disagrees: %v vs %v", got2, got1)
	}
	if c2.MapOutput >= c1.MapOutput {
		t.Errorf("combiner did not shrink shuffle: %d vs %d records", c2.MapOutput, c1.MapOutput)
	}
}
