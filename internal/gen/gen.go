// Package gen provides deterministic synthetic graph generators used as
// stand-ins for the paper's real-world datasets (offline reproduction
// cannot download WebGoogle/WikiTalk/.../Yahoo): Chung-Lu power-law graphs
// for social networks, R-MAT for web graphs, Erdős–Rényi for low-clustering
// citation-like graphs, Barabási–Albert preferential attachment for dense
// community graphs, and bipartite graphs (which guarantee the paper's
// "no q4 solutions on Wikipedia" behavior).
package gen

import (
	"math"
	"math/rand"
	"sort"

	"dualsim/internal/graph"
)

// ErdosRenyi returns a random graph with n vertices and about m edges
// (duplicates collapse).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]graph.VertexID, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, [2]graph.VertexID{
			graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)),
		})
	}
	return graph.MustNewGraph(n, edges)
}

// ChungLu returns a power-law graph: vertex i has expected weight
// proportional to (i+1)^(-1/(exponent-1)), and m edges are sampled with
// endpoint probability proportional to weight.
func ChungLu(n, m int, exponent float64, seed int64) *graph.Graph {
	if exponent <= 1.5 {
		exponent = 1.5
	}
	rng := rand.New(rand.NewSource(seed))
	alpha := 1 / (exponent - 1)
	cum := make([]float64, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + math.Pow(float64(i+1), -alpha)
	}
	total := cum[n]
	sample := func() graph.VertexID {
		x := rng.Float64() * total
		idx := sort.SearchFloat64s(cum, x)
		if idx > 0 {
			idx--
		}
		if idx >= n {
			idx = n - 1
		}
		return graph.VertexID(idx)
	}
	edges := make([][2]graph.VertexID, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, [2]graph.VertexID{sample(), sample()})
	}
	return graph.MustNewGraph(n, edges)
}

// BarabasiAlbert grows a graph by preferential attachment: each new vertex
// attaches k edges to existing vertices with probability proportional to
// degree.
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]graph.VertexID
	// repeated-endpoint list: vertex appears once per incident edge.
	targets := make([]graph.VertexID, 0, 2*n*k)
	// seed clique of k+1 vertices
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			edges = append(edges, [2]graph.VertexID{graph.VertexID(i), graph.VertexID(j)})
			targets = append(targets, graph.VertexID(i), graph.VertexID(j))
		}
	}
	for v := k + 1; v < n; v++ {
		chosen := map[graph.VertexID]bool{}
		// Keep insertion order so the repeated-endpoint list (and hence the
		// whole generation) is deterministic for a given seed.
		var picked []graph.VertexID
		for len(chosen) < k {
			w := targets[rng.Intn(len(targets))]
			if int(w) == v || chosen[w] {
				continue
			}
			chosen[w] = true
			picked = append(picked, w)
		}
		for _, w := range picked {
			edges = append(edges, [2]graph.VertexID{graph.VertexID(v), w})
			targets = append(targets, graph.VertexID(v), w)
		}
	}
	return graph.MustNewGraph(n, edges)
}

// RMAT samples m edges from the recursive-matrix distribution with
// quadrant probabilities (a, b, c, implicit d) over 2^scale vertices —
// the web-graph-like generator.
func RMAT(scale uint, m int, a, b, c float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	edges := make([][2]graph.VertexID, 0, m)
	for i := 0; i < m; i++ {
		var u, v int
		for level := 0; level < int(scale); level++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left
			case r < a+b:
				v |= 1 << uint(level)
			case r < a+b+c:
				u |= 1 << uint(level)
			default:
				u |= 1 << uint(level)
				v |= 1 << uint(level)
			}
		}
		edges = append(edges, [2]graph.VertexID{graph.VertexID(u), graph.VertexID(v)})
	}
	return graph.MustNewGraph(n, edges)
}

// Bipartite returns a random bipartite graph with parts of size n1 and n2
// and about m cross edges. It contains no odd cycle, so triangle-bearing
// queries have zero matches.
func Bipartite(n1, n2, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]graph.VertexID, 0, m)
	for i := 0; i < m; i++ {
		u := graph.VertexID(rng.Intn(n1))
		v := graph.VertexID(n1 + rng.Intn(n2))
		edges = append(edges, [2]graph.VertexID{u, v})
	}
	return graph.MustNewGraph(n1+n2, edges)
}

// SampleVertices returns the induced subgraph on a uniform random fraction
// of g's vertices, compactly relabeled — the paper's 20%..100% Friendster
// scaling methodology ([24]).
func SampleVertices(g *graph.Graph, frac float64, seed int64) *graph.Graph {
	if frac >= 1 {
		return g
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	keep := make([]int32, n) // new ID + 1, 0 = dropped
	next := int32(0)
	for v := 0; v < n; v++ {
		if rng.Float64() < frac {
			next++
			keep[v] = next
		}
	}
	if next == 0 {
		return graph.MustNewGraph(1, nil)
	}
	var edges [][2]graph.VertexID
	for v := 0; v < n; v++ {
		if keep[v] == 0 {
			continue
		}
		for _, w := range g.Adj(graph.VertexID(v)) {
			if graph.VertexID(v) < w && keep[w] != 0 {
				edges = append(edges, [2]graph.VertexID{
					graph.VertexID(keep[v] - 1), graph.VertexID(keep[w] - 1),
				})
			}
		}
	}
	return graph.MustNewGraph(int(next), edges)
}

// PlantedHubs returns a skewed-degree fixture: a sparse ring-with-chords
// background of n-hubs vertices plus hubs planted high-degree vertices,
// each wired to about span random background vertices and to every other
// hub. After degree reordering the hubs occupy the top of the vertex order,
// concentrating enumeration work in a narrow candidate range — the
// adversarial case for static work partitioning and for linear-merge
// intersections (hub adjacency lists dwarf background ones). Used by
// BenchmarkWindowEnum and the work-stealing tests.
func PlantedHubs(n, hubs, span int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	base := n - hubs
	edges := make([][2]graph.VertexID, 0, base+hubs*span)
	for v := 0; v < base; v++ {
		edges = append(edges, [2]graph.VertexID{graph.VertexID(v), graph.VertexID((v + 1) % base)})
		if v%5 == 0 {
			edges = append(edges, [2]graph.VertexID{graph.VertexID(v), graph.VertexID(rng.Intn(base))})
		}
	}
	for h := 0; h < hubs; h++ {
		hv := graph.VertexID(base + h)
		for i := 0; i < span; i++ {
			edges = append(edges, [2]graph.VertexID{hv, graph.VertexID(rng.Intn(base))})
		}
		for h2 := h + 1; h2 < hubs; h2++ {
			edges = append(edges, [2]graph.VertexID{hv, graph.VertexID(base + h2)})
		}
	}
	return graph.MustNewGraph(n, edges)
}
