package gen

import (
	"sort"
	"testing"

	"dualsim/internal/graph"
)

func TestDeterminism(t *testing.T) {
	cases := []struct {
		name string
		gen  func() *graph.Graph
	}{
		{"er", func() *graph.Graph { return ErdosRenyi(200, 600, 1) }},
		{"cl", func() *graph.Graph { return ChungLu(200, 800, 2.2, 2) }},
		{"ba", func() *graph.Graph { return BarabasiAlbert(200, 4, 3) }},
		{"rmat", func() *graph.Graph { return RMAT(8, 700, 0.57, 0.19, 0.19, 4) }},
		{"bip", func() *graph.Graph { return Bipartite(100, 120, 500, 5) }},
	}
	for _, c := range cases {
		a, b := c.gen(), c.gen()
		if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
			t.Errorf("%s: non-deterministic size", c.name)
			continue
		}
		for v := 0; v < a.NumVertices(); v++ {
			av, bv := a.Adj(graph.VertexID(v)), b.Adj(graph.VertexID(v))
			if len(av) != len(bv) {
				t.Errorf("%s: adjacency differs at %d", c.name, v)
				break
			}
		}
	}
}

func TestErdosRenyiSize(t *testing.T) {
	g := ErdosRenyi(500, 2000, 7)
	if g.NumVertices() != 500 {
		t.Errorf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() < 1800 || g.NumEdges() > 2000 {
		t.Errorf("edges = %d, want ~2000", g.NumEdges())
	}
}

func TestChungLuSkew(t *testing.T) {
	g := ChungLu(1000, 5000, 2.1, 8)
	max := g.MaxDegree()
	avg := 2 * g.NumEdges() / g.NumVertices()
	if max < 5*avg {
		t.Errorf("expected heavy skew: max=%d avg=%d", max, avg)
	}
}

func TestBarabasiAlbertProperties(t *testing.T) {
	g := BarabasiAlbert(500, 5, 9)
	if g.NumVertices() != 500 {
		t.Errorf("vertices = %d", g.NumVertices())
	}
	// Every post-seed vertex attaches k edges; minimum degree >= k.
	minDeg := g.NumVertices()
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(graph.VertexID(v)); d < minDeg {
			minDeg = d
		}
	}
	if minDeg < 5 {
		t.Errorf("min degree = %d, want >= 5", minDeg)
	}
	if g.MaxDegree() < 3*5 {
		t.Errorf("hub expected: max degree = %d", g.MaxDegree())
	}
}

func TestRMATSize(t *testing.T) {
	g := RMAT(10, 4000, 0.57, 0.19, 0.19, 10)
	if g.NumVertices() != 1024 {
		t.Errorf("vertices = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() == 0 {
		t.Error("no edges")
	}
}

func TestBipartiteHasNoTriangles(t *testing.T) {
	g := Bipartite(80, 90, 1200, 11)
	if got := graph.CountOccurrences(g, graph.Triangle()); got != 0 {
		t.Errorf("triangles in bipartite graph = %d", got)
	}
	if got := graph.CountOccurrences(g, graph.Square()); got == 0 {
		t.Errorf("expected squares in a dense bipartite graph")
	}
}

func TestSampleVertices(t *testing.T) {
	g := ErdosRenyi(1000, 5000, 12)
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		s := SampleVertices(g, frac, 13)
		ratio := float64(s.NumVertices()) / float64(g.NumVertices())
		if ratio < frac-0.1 || ratio > frac+0.1 {
			t.Errorf("frac %.1f: sampled ratio %.2f", frac, ratio)
		}
		if s.NumEdges() >= g.NumEdges() {
			t.Errorf("frac %.1f: edges did not shrink", frac)
		}
	}
	if s := SampleVertices(g, 1.0, 13); s != g {
		t.Error("frac 1.0 should return the graph itself")
	}
	// Monotone edge counts across fractions (roughly quadratic shrink).
	e20 := SampleVertices(g, 0.2, 14).NumEdges()
	e80 := SampleVertices(g, 0.8, 14).NumEdges()
	if e20 >= e80 {
		t.Errorf("sampling not monotone: 20%%=%d 80%%=%d", e20, e80)
	}
}

func TestSampleTinyFraction(t *testing.T) {
	g := ErdosRenyi(50, 100, 15)
	s := SampleVertices(g, 0.001, 16)
	if s.NumVertices() < 1 {
		t.Error("empty sample should degrade to a single vertex")
	}
}

func TestPlantedHubsSkew(t *testing.T) {
	g := PlantedHubs(2000, 8, 300, 42)
	if g.NumVertices() != 2000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// The 8 hubs must dominate the degree distribution.
	max, med := g.MaxDegree(), 0
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.Degree(graph.VertexID(v))
	}
	sort.Ints(degs)
	med = degs[len(degs)/2]
	if max < 20*med {
		t.Fatalf("max degree %d not >> median %d; fixture not skewed", max, med)
	}
	// Determinism.
	h := PlantedHubs(2000, 8, 300, 42)
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("not deterministic: %d vs %d edges", h.NumEdges(), g.NumEdges())
	}
}
