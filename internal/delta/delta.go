// Package delta is the live-ingest overlay: an in-memory, versioned set of
// edge insertions and deletions layered over the write-once page file. The
// base file stays the DUALSIM builder's external-sorted layout; mutations
// accumulate here as per-vertex sorted add/tombstone lists, and enumeration
// merges them with the base adjacency at window-load time. A background
// compactor periodically folds the overlay into a fresh page file and the
// overlay drains back toward empty.
//
// Concurrency model: the Store serializes writers under a mutex and
// publishes an immutable Snapshot behind an atomic pointer. Readers
// (query admission, window load) grab one Snapshot and see a frozen view
// for the whole run — a query never observes half a batch. Every applied
// batch bumps the data epoch, a monotone uint64 that names graph versions:
// resume tokens and cached plans are valid only at the epoch they were
// minted at.
package delta

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dualsim/internal/graph"
)

// Op is one edge mutation: an undirected edge (U, V) inserted or deleted.
type Op struct {
	// Insert is true for an edge insertion, false for a deletion.
	Insert bool
	// U and V are the edge endpoints; both must name existing vertices
	// (the vertex set is fixed until a rebuild) and U != V.
	U, V graph.VertexID
}

// VertexDelta is the overlay for one vertex: neighbors added and neighbors
// tombstoned, each a sorted duplicate-free set. The two sets are disjoint —
// applying an insert removes any tombstone for that neighbor and vice
// versa, so the last operation on an edge wins.
type VertexDelta struct {
	// Add lists neighbors the overlay adds to the base adjacency.
	Add []graph.VertexID
	// Del lists neighbors the overlay tombstones out of the base
	// adjacency.
	Del []graph.VertexID
}

// Snapshot is an immutable point-in-time view of the overlay. It is safe
// for concurrent use by any number of readers and stays valid (and
// unchanged) after later batches are applied to the Store.
type Snapshot struct {
	epoch uint64
	verts map[graph.VertexID]*VertexDelta
	adds  uint64
	dels  uint64
}

// emptySnapshot is the epoch-0 view shared by all fresh stores.
func emptySnapshot(epoch uint64) *Snapshot {
	return &Snapshot{epoch: epoch, verts: map[graph.VertexID]*VertexDelta{}}
}

// Epoch returns the data epoch this snapshot observes.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Empty reports whether the snapshot carries no mutations; enumeration
// over an empty snapshot is byte-for-byte the base-file read path.
func (s *Snapshot) Empty() bool { return len(s.verts) == 0 }

// Len returns the number of vertices with a non-empty overlay.
func (s *Snapshot) Len() int { return len(s.verts) }

// Adds returns the live inserted-edge-endpoint count (each undirected
// insert contributes two: one per endpoint).
func (s *Snapshot) Adds() uint64 { return s.adds }

// Dels returns the live tombstoned-edge-endpoint count.
func (s *Snapshot) Dels() uint64 { return s.dels }

// Of returns the overlay for v, or nil when v is unmutated. The returned
// value and its slices are shared and must not be modified.
func (s *Snapshot) Of(v graph.VertexID) *VertexDelta { return s.verts[v] }

// Vertices calls f for every mutated vertex, in unspecified order. The
// VertexDelta is shared and must not be modified.
func (s *Snapshot) Vertices(f func(v graph.VertexID, d *VertexDelta)) {
	for v, d := range s.verts {
		f(v, d)
	}
}

// Apply merges v's base adjacency with the overlay: (base ∪ Add) \ Del.
// base must be sorted ascending; the result is sorted ascending and never
// aliases base. For an unmutated vertex it returns base unchanged (no
// copy), so callers must treat the result as read-only.
func (s *Snapshot) Apply(v graph.VertexID, base []graph.VertexID) []graph.VertexID {
	d := s.verts[v]
	if d == nil {
		return base
	}
	out := make([]graph.VertexID, 0, len(base)+len(d.Add))
	i, j := 0, 0
	emit := func(w graph.VertexID) {
		if !containsSorted(d.Del, w) {
			out = append(out, w)
		}
	}
	for i < len(base) && j < len(d.Add) {
		switch {
		case base[i] < d.Add[j]:
			emit(base[i])
			i++
		case base[i] > d.Add[j]:
			emit(d.Add[j])
			j++
		default:
			emit(base[i])
			i++
			j++
		}
	}
	for ; i < len(base); i++ {
		emit(base[i])
	}
	for ; j < len(d.Add); j++ {
		emit(d.Add[j])
	}
	return out
}

// Degree returns the merged degree of v given its base degree — the length
// Apply would produce, without materializing the list. Exact only when the
// overlay's invariants hold against the base (Add disjoint from base, Del
// a subset of base ∪ Add), which Store.Apply cannot check; the engine uses
// it for budgeting, not correctness.
func (s *Snapshot) Degree(v graph.VertexID, baseDegree int) int {
	d := s.verts[v]
	if d == nil {
		return baseDegree
	}
	return baseDegree + len(d.Add) - len(d.Del)
}

// Store accumulates mutation batches and publishes immutable Snapshots.
// All methods are safe for concurrent use.
type Store struct {
	mu          sync.Mutex
	numVertices int
	cur         atomic.Pointer[Snapshot]

	batches   atomic.Uint64
	ops       atomic.Uint64
	rejected  atomic.Uint64
	rebases   atomic.Uint64
	lastEmpty atomic.Bool
}

// NewStore returns an empty store over a graph of numVertices vertices,
// starting at the given epoch (the base file's stamped epoch, so epochs
// never regress across restarts).
func NewStore(numVertices int, epoch uint64) *Store {
	st := &Store{numVertices: numVertices}
	st.cur.Store(emptySnapshot(epoch))
	st.lastEmpty.Store(true)
	return st
}

// Snapshot returns the current immutable view.
func (st *Store) Snapshot() *Snapshot { return st.cur.Load() }

// Epoch returns the current data epoch.
func (st *Store) Epoch() uint64 { return st.cur.Load().epoch }

// Batches returns the number of successfully applied batches.
func (st *Store) Batches() uint64 { return st.batches.Load() }

// Ops returns the total mutation count across applied batches.
func (st *Store) Ops() uint64 { return st.ops.Load() }

// Rejected returns the number of batches rejected by validation.
func (st *Store) Rejected() uint64 { return st.rejected.Load() }

// Rebases returns the number of compaction drains applied via Rebase.
func (st *Store) Rebases() uint64 { return st.rebases.Load() }

// Validate checks a batch without applying it: every op must name two
// distinct in-range vertices.
func (st *Store) Validate(ops []Op) error {
	for i, op := range ops {
		if op.U == op.V {
			return fmt.Errorf("delta: op %d: self-loop on vertex %d", i, op.U)
		}
		if int(op.U) >= st.numVertices || int(op.V) >= st.numVertices {
			return fmt.Errorf("delta: op %d: vertex out of range [0,%d)", i, st.numVertices)
		}
	}
	return nil
}

// Apply validates and applies one atomic batch, publishing a new Snapshot
// with the epoch bumped by one. Within a batch, later ops win over earlier
// ops on the same edge; across batches, the overlay is idempotent set
// semantics (inserting a present edge or deleting an absent one is a
// no-op at read time). Returns the new epoch.
func (st *Store) Apply(ops []Op) (uint64, error) {
	if err := st.Validate(ops); err != nil {
		st.rejected.Add(1)
		return st.Epoch(), err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	old := st.cur.Load()
	next := &Snapshot{
		epoch: old.epoch + 1,
		verts: make(map[graph.VertexID]*VertexDelta, len(old.verts)+len(ops)),
		adds:  old.adds,
		dels:  old.dels,
	}
	for v, d := range old.verts {
		next.verts[v] = d
	}
	for _, op := range ops {
		next.applyHalf(op.Insert, op.U, op.V)
		next.applyHalf(op.Insert, op.V, op.U)
	}
	next.prune()
	st.cur.Store(next)
	st.batches.Add(1)
	st.ops.Add(uint64(len(ops)))
	st.lastEmpty.Store(next.Empty())
	return next.epoch, nil
}

// applyHalf records one direction of an undirected mutation on a snapshot
// still under construction, copying the touched VertexDelta on first write
// so published snapshots stay frozen.
func (s *Snapshot) applyHalf(insert bool, v, w graph.VertexID) {
	d := s.verts[v]
	if d == nil {
		d = &VertexDelta{}
	} else {
		d = &VertexDelta{
			Add: append([]graph.VertexID(nil), d.Add...),
			Del: append([]graph.VertexID(nil), d.Del...),
		}
	}
	if insert {
		var removed bool
		d.Del, removed = removeSorted(d.Del, w)
		if removed {
			s.dels--
		}
		if ins := insertSorted(&d.Add, w); ins {
			s.adds++
		}
	} else {
		var removed bool
		d.Add, removed = removeSorted(d.Add, w)
		if removed {
			s.adds--
		}
		if ins := insertSorted(&d.Del, w); ins {
			s.dels++
		}
	}
	s.verts[v] = d
}

// prune drops vertices whose overlay became empty (insert-then-delete
// within the accumulated history), keeping Empty()/Len() meaningful.
func (s *Snapshot) prune() {
	for v, d := range s.verts {
		if len(d.Add) == 0 && len(d.Del) == 0 {
			delete(s.verts, v)
		}
	}
}

// Rebase subtracts a compacted snapshot from the current overlay: every
// add and tombstone present in folded is now baked into the base file, so
// it leaves the live overlay. The epoch is unchanged — compaction rewrites
// the representation, not the data. Called by the compactor after the new
// base file is fully swapped in; mutations that arrived during compaction
// survive in the remaining overlay.
func (st *Store) Rebase(folded *Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	old := st.cur.Load()
	next := &Snapshot{
		epoch: old.epoch,
		verts: make(map[graph.VertexID]*VertexDelta, len(old.verts)),
	}
	for v, d := range old.verts {
		f := folded.verts[v]
		if f == nil {
			next.verts[v] = d
			next.adds += uint64(len(d.Add))
			next.dels += uint64(len(d.Del))
			continue
		}
		nd := &VertexDelta{
			Add: subtractSorted(d.Add, f.Add),
			Del: subtractSorted(d.Del, f.Del),
		}
		if len(nd.Add) == 0 && len(nd.Del) == 0 {
			continue
		}
		next.verts[v] = nd
		next.adds += uint64(len(nd.Add))
		next.dels += uint64(len(nd.Del))
	}
	st.cur.Store(next)
	st.rebases.Add(1)
	st.lastEmpty.Store(next.Empty())
}

// containsSorted reports whether sorted slice a contains x.
func containsSorted(a []graph.VertexID, x graph.VertexID) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	return i < len(a) && a[i] == x
}

// insertSorted inserts x into the sorted set *a, reporting whether it was
// absent (and therefore inserted).
func insertSorted(a *[]graph.VertexID, x graph.VertexID) bool {
	s := *a
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	*a = s
	return true
}

// removeSorted removes x from the sorted set a, reporting whether it was
// present. The input slice is never modified.
func removeSorted(a []graph.VertexID, x graph.VertexID) ([]graph.VertexID, bool) {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	if i >= len(a) || a[i] != x {
		return a, false
	}
	out := make([]graph.VertexID, 0, len(a)-1)
	out = append(out, a[:i]...)
	return append(out, a[i+1:]...), true
}

// subtractSorted returns a \ b for sorted sets, never aliasing a.
func subtractSorted(a, b []graph.VertexID) []graph.VertexID {
	if len(a) == 0 {
		return nil
	}
	out := make([]graph.VertexID, 0, len(a))
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}
