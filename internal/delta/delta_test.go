package delta

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dualsim/internal/graph"
)

func vs(xs ...int) []graph.VertexID {
	out := make([]graph.VertexID, len(xs))
	for i, x := range xs {
		out[i] = graph.VertexID(x)
	}
	return out
}

func TestApplyInsertDelete(t *testing.T) {
	st := NewStore(10, 0)
	if !st.Snapshot().Empty() || st.Epoch() != 0 {
		t.Fatalf("fresh store: empty=%v epoch=%d", st.Snapshot().Empty(), st.Epoch())
	}
	ep, err := st.Apply([]Op{{Insert: true, U: 1, V: 2}, {Insert: true, U: 1, V: 5}})
	if err != nil || ep != 1 {
		t.Fatalf("apply: epoch=%d err=%v", ep, err)
	}
	s := st.Snapshot()
	if got := s.Apply(1, vs(3)); !reflect.DeepEqual(got, vs(2, 3, 5)) {
		t.Fatalf("Apply(1, [3]) = %v, want [2 3 5]", got)
	}
	if got := s.Apply(2, vs(0, 9)); !reflect.DeepEqual(got, vs(0, 1, 9)) {
		t.Fatalf("Apply(2, [0 9]) = %v, want [0 1 9]", got)
	}
	// Unmutated vertex: base returned unchanged, no copy.
	base := vs(4, 6)
	if got := s.Apply(7, base); &got[0] != &base[0] {
		t.Fatal("Apply on unmutated vertex should return base unchanged")
	}

	ep, err = st.Apply([]Op{{Insert: false, U: 1, V: 2}, {Insert: false, U: 1, V: 3}})
	if err != nil || ep != 2 {
		t.Fatalf("apply deletes: epoch=%d err=%v", ep, err)
	}
	s2 := st.Snapshot()
	if got := s2.Apply(1, vs(2, 3)); !reflect.DeepEqual(got, vs(5)) {
		t.Fatalf("after deletes Apply(1, [2 3]) = %v, want [5]", got)
	}
	// The old snapshot is frozen: still sees the pre-delete view.
	if got := s.Apply(1, vs(3)); !reflect.DeepEqual(got, vs(2, 3, 5)) {
		t.Fatalf("old snapshot mutated: got %v", got)
	}
}

func TestApplyLastOpWinsAndReinsert(t *testing.T) {
	st := NewStore(8, 0)
	// Within one batch, later ops win.
	if _, err := st.Apply([]Op{
		{Insert: true, U: 0, V: 1},
		{Insert: false, U: 0, V: 1},
	}); err != nil {
		t.Fatal(err)
	}
	s := st.Snapshot()
	if d := s.Of(0); d == nil || len(d.Add) != 0 || !reflect.DeepEqual(d.Del, vs(1)) {
		t.Fatalf("insert-then-delete: %+v", d)
	}
	// Re-insert clears the tombstone.
	if _, err := st.Apply([]Op{{Insert: true, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	s = st.Snapshot()
	if d := s.Of(0); d == nil || !reflect.DeepEqual(d.Add, vs(1)) || len(d.Del) != 0 {
		t.Fatalf("re-insert: %+v", d)
	}
	if got := s.Apply(0, vs(3)); !reflect.DeepEqual(got, vs(1, 3)) {
		t.Fatalf("Apply = %v, want [1 3]", got)
	}
}

func TestValidateRejects(t *testing.T) {
	st := NewStore(4, 7)
	cases := [][]Op{
		{{Insert: true, U: 2, V: 2}},
		{{Insert: true, U: 0, V: 4}},
		{{Insert: false, U: 9, V: 1}},
	}
	for i, ops := range cases {
		if _, err := st.Apply(ops); err == nil {
			t.Fatalf("case %d: expected rejection", i)
		}
	}
	if st.Epoch() != 7 {
		t.Fatalf("rejected batches must not bump the epoch: %d", st.Epoch())
	}
	if st.Rejected() != 3 {
		t.Fatalf("rejected = %d, want 3", st.Rejected())
	}
}

func TestRebaseDrainsFolded(t *testing.T) {
	st := NewStore(16, 0)
	if _, err := st.Apply([]Op{{Insert: true, U: 1, V: 2}, {Insert: false, U: 3, V: 4}}); err != nil {
		t.Fatal(err)
	}
	folded := st.Snapshot() // compactor folds this view into a new file
	if _, err := st.Apply([]Op{{Insert: true, U: 5, V: 6}}); err != nil {
		t.Fatal(err) // arrives during compaction
	}
	st.Rebase(folded)
	s := st.Snapshot()
	if s.Epoch() != 2 {
		t.Fatalf("rebase must not change the epoch: %d", s.Epoch())
	}
	if s.Of(1) != nil || s.Of(3) != nil {
		t.Fatal("folded mutations must drain")
	}
	if d := s.Of(5); d == nil || !reflect.DeepEqual(d.Add, vs(6)) {
		t.Fatalf("mid-compaction mutation lost: %+v", d)
	}
	if st.Rebases() != 1 {
		t.Fatalf("rebases = %d", st.Rebases())
	}
}

func TestDegree(t *testing.T) {
	st := NewStore(8, 0)
	if _, err := st.Apply([]Op{
		{Insert: true, U: 0, V: 1},
		{Insert: true, U: 0, V: 2},
		{Insert: false, U: 0, V: 3},
	}); err != nil {
		t.Fatal(err)
	}
	s := st.Snapshot()
	if got := s.Degree(0, 5); got != 6 {
		t.Fatalf("Degree(0, 5) = %d, want 6", got)
	}
	if got := s.Degree(7, 5); got != 5 {
		t.Fatalf("Degree(7, 5) = %d, want 5", got)
	}
}

// TestRandomizedAgainstMap drives random batches through the store and an
// oracle adjacency-set map, checking Apply output after each batch.
func TestRandomizedAgainstMap(t *testing.T) {
	const n = 24
	rng := rand.New(rand.NewSource(41))
	oracleBase := map[graph.VertexID]map[graph.VertexID]bool{}
	for v := 0; v < n; v++ {
		oracleBase[graph.VertexID(v)] = map[graph.VertexID]bool{}
	}
	// A fixed pseudo-random base graph.
	for i := 0; i < 60; i++ {
		u := graph.VertexID(rng.Intn(n))
		w := graph.VertexID(rng.Intn(n))
		if u == w {
			continue
		}
		oracleBase[u][w] = true
		oracleBase[w][u] = true
	}
	baseAdj := func(v graph.VertexID) []graph.VertexID {
		var out []graph.VertexID
		for w := range oracleBase[v] {
			out = append(out, w)
		}
		sortIDs(out)
		return out
	}

	st := NewStore(n, 0)
	oracle := map[graph.VertexID]map[graph.VertexID]bool{}
	for v, m := range oracleBase {
		oracle[v] = map[graph.VertexID]bool{}
		for w := range m {
			oracle[v][w] = true
		}
	}
	for batch := 0; batch < 50; batch++ {
		ops := make([]Op, 1+rng.Intn(6))
		for i := range ops {
			u := graph.VertexID(rng.Intn(n))
			w := graph.VertexID((int(u) + 1 + rng.Intn(n-1)) % n)
			ops[i] = Op{Insert: rng.Intn(2) == 0, U: u, V: w}
			if ops[i].Insert {
				oracle[u][w] = true
				oracle[w][u] = true
			} else {
				delete(oracle[u], w)
				delete(oracle[w], u)
			}
		}
		if _, err := st.Apply(ops); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		s := st.Snapshot()
		for v := 0; v < n; v++ {
			vid := graph.VertexID(v)
			got := s.Apply(vid, baseAdj(vid))
			var want []graph.VertexID
			for w := range oracle[vid] {
				want = append(want, w)
			}
			sortIDs(want)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("batch %d vertex %d: got %v want %v", batch, v, got, want)
			}
		}
	}
}

func TestConcurrentApplySnapshot(t *testing.T) {
	st := NewStore(64, 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				u := graph.VertexID(rng.Intn(64))
				v := graph.VertexID((int(u) + 1 + rng.Intn(63)) % 64)
				if _, err := st.Apply([]Op{{Insert: rng.Intn(2) == 0, U: u, V: v}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s := st.Snapshot()
			s.Vertices(func(v graph.VertexID, d *VertexDelta) {
				_ = s.Apply(v, nil)
			})
		}
	}()
	wg.Wait()
	if st.Epoch() != 800 {
		t.Fatalf("epoch = %d, want 800", st.Epoch())
	}
}

func sortIDs(a []graph.VertexID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
