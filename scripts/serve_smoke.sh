#!/usr/bin/env sh
# serve_smoke.sh — end-to-end smoke test of `dualsim serve`.
#
# Builds the CLI, builds a database from testdata/karate.txt, starts the
# query service on a free port, queries it over HTTP, checks the metrics
# endpoint, then delivers SIGTERM and requires a clean (exit 0) drain.
set -eu

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/dualsim" ./cmd/dualsim

echo "== build db"
"$workdir/dualsim" build -edges testdata/karate.txt -db "$workdir/g.db" -pagesize 512

# The ground truth for the assertion below, from the offline path.
expected=$("$workdir/dualsim" run -db "$workdir/g.db" -q q1 -json | sed -n 's/^ *"count": \([0-9]*\),$/\1/p' | head -n 1)
echo "== expected q1 count: $expected"

echo "== serve"
"$workdir/dualsim" serve -db "$workdir/g.db" -addr 127.0.0.1:0 -engines 2 -frames 32 \
    >"$workdir/serve.out" 2>"$workdir/serve.err" &
server_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^serving .* on \([0-9.:]*\) .*/\1/p' "$workdir/serve.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "FAIL: server never printed its address" >&2
    cat "$workdir/serve.err" >&2
    exit 1
fi
echo "== serving on $addr"

echo "== query"
resp=$(curl -sS -X POST "http://$addr/query" -d '{"query":"q1"}')
echo "$resp"
case "$resp" in
*"\"count\":$expected"*) ;;
*)
    echo "FAIL: response does not carry count=$expected" >&2
    exit 1
    ;;
esac

echo "== metrics"
metrics=$(curl -sS "http://$addr/metrics")
for family in dualsim_server_requests_total dualsim_plan_cache_misses_total; do
    case "$metrics" in
    *"$family"*) ;;
    *)
        echo "FAIL: /metrics missing $family" >&2
        exit 1
        ;;
    esac
done

echo "== drain (SIGTERM)"
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=""
if [ "$rc" -ne 0 ]; then
    echo "FAIL: serve exited $rc after SIGTERM, want 0" >&2
    cat "$workdir/serve.err" >&2
    exit 1
fi

echo "PASS"
