GO ?= go

.PHONY: build test race vet fmt check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# check is the full pre-commit gate: static analysis plus the race-enabled
# test suite (the robustness tests exercise concurrent cancellation paths
# that only -race can vouch for).
check: vet
	$(GO) test -race ./...

clean:
	$(GO) clean ./...
