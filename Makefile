GO ?= go

# Build identity, stamped into the binary (dualsim -version, GET /stats,
# the dualsim_build_info gauge). Override VERSION for releases.
VERSION ?= dev
COMMIT  ?= $(shell git rev-parse --short=12 HEAD 2>/dev/null)
LDFLAGS := -X dualsim/internal/buildinfo.Version=$(VERSION) \
           -X dualsim/internal/buildinfo.Commit=$(COMMIT)

.PHONY: build test race vet fmt lint check bench bench-book bench-book-check metrics-doc metrics-doc-check smoke-serve soak clean

build:
	$(GO) build -ldflags "$(LDFLAGS)" ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# lint runs vet plus the in-repo godoc linter (a stdlib stand-in for
# revive's `exported` rule), gated to the packages whose exported surface
# doubles as the paper-concept glossary, and the metrics-doc staleness
# gate (every registered metric must be documented in docs/METRICS.md).
lint: vet metrics-doc-check
	$(GO) run ./cmd/lintdoc ./internal/graph ./internal/core ./internal/buffer ./internal/sharedscan ./internal/storage ./internal/delta

# metrics-doc regenerates docs/METRICS.md from the live metric registry
# (every counter/gauge/histogram the server registers, plus the paper
# mapping). Commit the result whenever metrics change.
metrics-doc:
	$(GO) run ./cmd/metricsdoc -write

# metrics-doc-check fails when a registered metric is missing from (or
# stale in) docs/METRICS.md.
metrics-doc-check:
	$(GO) run ./cmd/metricsdoc -check

# check is the full pre-commit gate: static analysis plus the race-enabled
# test suite (the robustness tests exercise concurrent cancellation paths
# that only -race can vouch for).
check: lint
	$(GO) test -race ./...

# bench runs every benchmark once — a smoke test that the benchmark harness
# still compiles and executes, not a measurement (use -benchtime 3x and a
# quiet machine for real numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-book regenerates docs/BENCHMARKS.md (the committed benchmark book)
# from a fresh run of the kernel and window-enumeration benchmarks. Run on
# a quiet machine and commit the result whenever those benchmarks change.
bench-book:
	$(GO) run ./cmd/benchbook -write

# bench-book-check fails if the committed book's benchmark set no longer
# matches what the code produces (CI's staleness gate; numbers may differ).
bench-book-check:
	$(GO) run ./cmd/benchbook -check -raw bench-raw.txt

# smoke-serve exercises the query service end to end: build, serve the
# karate-club database on a free port, query it over HTTP, SIGTERM, and
# require a clean drain (exit 0).
smoke-serve:
	./scripts/serve_smoke.sh

# soak runs the seeded chaos matrix and time-boxed chaos soaks under -race:
# mid-query transient faults, bursts, torn reads, and latency spikes are
# injected through the server's end-to-end path, and every faulted +
# resumed query must produce exactly the fault-free counts. The ingest soak
# adds concurrent mutators + compactions and requires the settled counts to
# match a from-scratch rebuild. Failures print the offending seed;
# reproduce one with
#   go test -race -run TestChaosSoak ./internal/server -v   (same seed base)
# Tune the time box with SOAK_SECONDS (default 20 here).
SOAK_SECONDS ?= 20
soak:
	SOAK_SECONDS=$(SOAK_SECONDS) $(GO) test -race -count=1 -v \
		-run 'TestChaosMatrixFaultedResumeExactCounts|TestChaosSoak|TestChaosIngestSoak' \
		./internal/server

clean:
	$(GO) clean ./...
