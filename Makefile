GO ?= go

.PHONY: build test race vet fmt check bench smoke-serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# check is the full pre-commit gate: static analysis plus the race-enabled
# test suite (the robustness tests exercise concurrent cancellation paths
# that only -race can vouch for).
check: vet
	$(GO) test -race ./...

# bench runs every benchmark once — a smoke test that the benchmark harness
# still compiles and executes, not a measurement (use -benchtime 3x and a
# quiet machine for real numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# smoke-serve exercises the query service end to end: build, serve the
# karate-club database on a free port, query it over HTTP, SIGTERM, and
# require a clean drain (exit 0).
smoke-serve:
	./scripts/serve_smoke.sh

clean:
	$(GO) clean ./...
