GO ?= go

.PHONY: build test race vet fmt check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# check is the full pre-commit gate: static analysis plus the race-enabled
# test suite (the robustness tests exercise concurrent cancellation paths
# that only -race can vouch for).
check: vet
	$(GO) test -race ./...

# bench runs every benchmark once — a smoke test that the benchmark harness
# still compiles and executes, not a measurement (use -benchtime 3x and a
# quiet machine for real numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
