// Command bench regenerates the paper's evaluation tables and figures on
// the synthetic stand-in datasets.
//
// Usage:
//
//	bench -exp all                  # everything, in paper order
//	bench -exp fig11 -scale 0.3     # one experiment at a larger scale
//	bench -list                     # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"dualsim/internal/exp"
)

func main() {
	name := flag.String("exp", "all", "experiment to run (see -list)")
	list := flag.Bool("list", false, "list available experiments")
	scale := flag.Float64("scale", 0.15, "dataset scale factor")
	threads := flag.Int("threads", 4, "DUALSIM worker threads")
	workers := flag.Int("workers", 50, "simulated cluster slaves")
	pageSize := flag.Int("pagesize", 1024, "database page size")
	verbose := flag.Bool("v", false, "progress logging to stderr")
	flag.Parse()

	if *list {
		for _, x := range exp.Experiments() {
			fmt.Printf("%-10s %s\n", x.Name, x.Desc)
		}
		return
	}
	cfg := exp.Config{
		Scale:          *scale,
		Threads:        *threads,
		ClusterWorkers: *workers,
		PageSize:       *pageSize,
	}
	if *verbose {
		cfg.Out = os.Stderr
	}
	if *name == "all" {
		if err := exp.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	x, err := exp.ByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	env := exp.NewEnv(cfg)
	defer env.Close()
	t, err := x.Run(env)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %s: %v\n", x.Name, err)
		os.Exit(1)
	}
	t.Fprint(os.Stdout)
}
