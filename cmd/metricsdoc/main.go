// Command metricsdoc maintains docs/METRICS.md, the generated reference of
// every metric the service registers: name, type, labels, help text, and
// the paper quantity it observes (DESIGN.md §6c).
//
// Modes:
//
//	metricsdoc -write    regenerate docs/METRICS.md
//	metricsdoc -check    fail (exit 1) if the committed file differs from
//	                     what the code would generate — the staleness gate
//	                     `make lint` and CI run, so a metric added, renamed,
//	                     or re-helped without regenerating the doc is an
//	                     error.
//
// The registry is populated the same way a running service populates it:
// a throwaway database is built in a temp dir and a server (retry layer
// on, so the recovery metrics register too) is constructed over it. Only
// metadata is rendered — no values — so the output is deterministic.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dualsim/internal/core"
	"dualsim/internal/graph"
	"dualsim/internal/obs"
	"dualsim/internal/server"
	"dualsim/internal/storage"
)

const docPath = "docs/METRICS.md"

func main() {
	write := flag.Bool("write", false, "regenerate "+docPath)
	check := flag.Bool("check", false, "fail if "+docPath+" is stale")
	flag.Parse()
	if *write == *check {
		fmt.Fprintln(os.Stderr, "metricsdoc: exactly one of -write or -check is required")
		os.Exit(2)
	}
	doc, err := generate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricsdoc: %v\n", err)
		os.Exit(1)
	}
	if *write {
		if err := os.WriteFile(docPath, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "metricsdoc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metricsdoc: wrote %s\n", docPath)
		return
	}
	committed, err := os.ReadFile(docPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricsdoc: reading %s: %v (run `make metrics-doc`)\n", docPath, err)
		os.Exit(1)
	}
	if !bytes.Equal(committed, doc) {
		fmt.Fprintf(os.Stderr, "metricsdoc: %s is stale: the registered metric set or metadata changed.\nRun `make metrics-doc` and commit the result.\n", docPath)
		os.Exit(1)
	}
	fmt.Printf("metricsdoc: %s is up to date (%d metrics)\n", docPath, strings.Count(string(doc), "\n| `"))
}

// registerAll builds a throwaway database and stands up a server over it,
// which registers the full metric surface: engine, buffer pool, retry
// layer, plan cache, breaker, slow log, build info.
func registerAll() ([]obs.MetricInfo, error) {
	dir, err := os.MkdirTemp("", "metricsdoc")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "doc.db")
	// A few triangles; the content is irrelevant, only registration is.
	edges := [][2]graph.VertexID{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}}
	if _, err := storage.Build(path, storage.NewSliceSource(5, edges), storage.BuildOptions{}); err != nil {
		return nil, err
	}
	db, err := storage.Open(path)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	srv, err := server.New(db, server.Config{
		Engines:   1,
		ShareScan: true, // the cohort scheduler registers its metrics eagerly
		Engine: core.Options{
			Threads:      1,
			BufferFrames: 8,
			Retry:        &storage.RetryPolicy{MaxRetries: 1},
		},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	return srv.Registry().List(), nil
}

// paperNotes maps metric names (exact, or trailing-* prefix) onto the
// paper quantity they observe — the DESIGN.md §6c table in machine form.
var paperNotes = []struct{ pattern, note string }{
	{"dualsim_pages_read_total", "Equation 1's I/O cost: the page reads the dual approach minimizes"},
	{"dualsim_logical_reads_total", "pin requests; with pages_read gives the effective hit rate of the windowed buffer"},
	{"dualsim_buffer_hits_total", "level-wise buffer allocation effectiveness (Figure 9 sweep)"},
	{"dualsim_buffer_hit_ratio", "level-wise buffer allocation effectiveness (Figure 9 sweep)"},
	{"dualsim_buffer_evictions_total", "frame recycling under the fixed page budget"},
	{"dualsim_buffer_pin_wait_nanos_total", "CPU–I/O overlap: enumeration stalls on in-flight reads"},
	{"dualsim_io_wait_nanos_total", "CPU–I/O overlap: orchestrator blocked on window loads"},
	{"dualsim_coalesced_*", "sequential-I/O preservation: multi-page stretches served with one seek"},
	{"dualsim_windows_total", "window iterations, all levels — Algorithm 2's loop structure"},
	{"dualsim_windows_level1_total", "level-1 (outermost) windows: full passes over the page range"},
	{"dualsim_window_pages", "pages per window — the unit the buffer budget divides into"},
	{"dualsim_window_load_us", "per-window load latency, the unit of the overlap analysis"},
	{"dualsim_candidate_size", "candidate-set distribution driving the Cartesian bound (Figure 4)"},
	{"dualsim_embeddings_internal_total", "internal/external split of intermediate results (Table 4)"},
	{"dualsim_embeddings_external_total", "internal/external split of intermediate results (Table 4)"},
	{"dualsim_embeddings_total", "occurrences found (exactly-once)"},
	{"dualsim_intersect_compressed_total", "compressed-domain kernel: intersections consuming a delta/skip-encoded operand without decoding (§4's storage layout made a kernel operand)"},
	{"dualsim_intersect_*", "adaptive kernel mix: linear merge vs galloping vs k-way"},
	{"dualsim_compressed_records_total", "compressed adjacency records entering windows — the share of Equation 1's I/O served from the compact encoding"},
	{"dualsim_compressed_bytes_total", "on-disk bytes of compressed adjacency loaded; with pages_read, the bytes-per-edge win of the encoding"},
	{"dualsim_compressed_skip_seeks_total", "skip-pointer block jumps: galloping over compressed lists without sequential decode"},
	{"dualsim_steal_*", "work-stealing activity — parallel speedup headroom (Figure 16)"},
	{"dualsim_worker_*", "parallel speedup headroom (Figure 16): a drained queue means workers starve"},
	{"dualsim_prefetch_*", "cross-window prefetch pipeline: speculation issued/useful/wasted"},
	{"dualsim_retry_*", "resilient read path recovery activity (§6b)"},
	{"dualsim_checkpoints_taken_total", "checkpoint cadence of the failure-domain layers (§6b)"},
	{"dualsim_window_retries_total", "whole-window recoveries absorbed without losing exactness (§6b)"},
	{"dualsim_resumes_*", "resume-token outcomes (§6b); the stale_epoch label counts tokens invalidated by live ingest"},
	{"dualsim_ingest_*", "live ingest: edge-mutation batches entering the delta overlay (the mutable-graph extension of §4's static layout)"},
	{"dualsim_data_epoch", "monotone mutation clock: every query, plan, and resume token is pinned to one epoch"},
	{"dualsim_delta_overlay_vertices", "overlay size awaiting compaction — the memory cost of mutability over the immutable base file"},
	{"dualsim_compactions_total", "overlay folds into a fresh base file: mutability amortized back to §4's sequential layout"},
	{"dualsim_compaction_errors_total", "failed folds (overlay retained, base file unchanged)"},
	{"dualsim_overlay_merged_vertices_total", "window loads that merged live-ingest deltas into the adjacency before enumeration"},
	{"dualsim_breaker_*", "pool health: 0 closed / 1 shed / 2 open / 3 half-open (§6b)"},
	{"dualsim_slow_queries_total", "per-query attribution: completed queries at/over the slow-log threshold"},
	{"dualsim_build_info", "build identity (version/commit labels, constant 1)"},
	{"dualsim_runs_total", "enumeration runs executed"},
	{"dualsim_server_cohort_fallbacks_total", "shared-scan eligibility boundary: queries bounced to a solo engine"},
	{"dualsim_server_*", "serving layer: admission, queueing, streaming, drain (§7)"},
	{"dualsim_plan_cache_shared_builds_total", "singleflight plan construction: N concurrent arrivals, one Prepare"},
	{"dualsim_plan_cache_*", "canonical-form plan cache (§7): isomorphic queries share one plan"},
	{"dualsim_cohort_*", "shared-scan cohorts: one level-1 sweep amortized over N riders (§6's scan-sharing corollary)"},
	{"dualsim_shared_windows_total", "windows served once to a whole cohort — the amortized unit of Equation 1"},
	{"dualsim_shared_pages_total", "pages attributed to riders (page count x riders): logical consumption of the shared sweep"},
	{"dualsim_sweep_pages_read_total", "physical reads owned by shared sweeps; with pages_read_total, closes the attribution ledger"},
}

func noteFor(name string) string {
	for _, pn := range paperNotes {
		if strings.HasSuffix(pn.pattern, "*") {
			if strings.HasPrefix(name, strings.TrimSuffix(pn.pattern, "*")) {
				return pn.note
			}
		} else if name == pn.pattern {
			return pn.note
		}
	}
	return "—"
}

func generate() ([]byte, error) {
	metrics, err := registerAll()
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	b.WriteString("# Metrics reference\n\n")
	b.WriteString("Generated by `cmd/metricsdoc` from the live metric registry — do not\n")
	b.WriteString("edit by hand. Regenerate with `make metrics-doc`; `make lint` and CI\n")
	b.WriteString("fail when this file no longer matches the registered metric set.\n\n")
	b.WriteString("All metrics are served at `GET /metrics` (Prometheus text format) and\n")
	b.WriteString("`GET /debug/vars` (JSON snapshot). Histograms use log₂ buckets. The\n")
	b.WriteString("\"paper quantity\" column says what each metric observes from the\n")
	b.WriteString("DUALSIM analysis; see DESIGN.md §6c for the narrative version, and\n")
	b.WriteString("README.md §Observability for the per-query attribution surface\n")
	b.WriteString("(`?profile=1` cost profiles, spans, `GET /debug/slowlog`).\n\n")
	b.WriteString(fmt.Sprintf("%d metrics registered.\n\n", len(metrics)))
	b.WriteString("| metric | type | labels | meaning | paper quantity |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, m := range metrics {
		labels := "—"
		if len(m.Labels) > 0 {
			keys := make([]string, len(m.Labels))
			for i, l := range m.Labels {
				keys[i] = "`" + l.Key + "`"
			}
			labels = strings.Join(keys, ", ")
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s |\n",
			m.Name, m.Kind, labels, escapeCell(m.Help), escapeCell(noteFor(m.Name)))
	}
	return b.Bytes(), nil
}

// escapeCell keeps help strings table-safe.
func escapeCell(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	s = strings.ReplaceAll(s, "\n", " ")
	return s
}
