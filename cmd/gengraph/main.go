// Command gengraph writes synthetic graphs as edge-list text files, either
// from a generator family or from one of the paper's dataset stand-ins.
//
// Usage:
//
//	gengraph -family er      -n 10000 -m 50000 -seed 1 -out edges.txt
//	gengraph -family chunglu -n 10000 -m 80000 -exp 2.2 -out edges.txt
//	gengraph -family ba      -n 10000 -k 8 -out edges.txt
//	gengraph -family rmat    -scalebits 14 -m 100000 -out edges.txt
//	gengraph -family bipartite -n 5000 -n2 5000 -m 40000 -out edges.txt
//	gengraph -dataset LJ -scale 0.5 -out lj.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"dualsim/internal/dataset"
	"dualsim/internal/gen"
	"dualsim/internal/graph"
)

func main() {
	family := flag.String("family", "", "generator: er, chunglu, ba, rmat, bipartite")
	ds := flag.String("dataset", "", "dataset stand-in: WG, WT, UP, LJ, OK, WP, FR, YH")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	n := flag.Int("n", 10000, "vertices (or first part for bipartite)")
	n2 := flag.Int("n2", 0, "second part size for bipartite (default n)")
	m := flag.Int("m", 50000, "edges to sample")
	k := flag.Int("k", 8, "edges per new vertex (ba)")
	exponent := flag.Float64("exp", 2.2, "power-law exponent (chunglu)")
	scaleBits := flag.Uint("scalebits", 14, "log2 of vertex count (rmat)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output edge-list path (default stdout)")
	flag.Parse()

	g, err := generate(*family, *ds, *scale, *n, *n2, *m, *k, *exponent, *scaleBits, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	fmt.Fprintf(w, "# %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	for _, e := range g.EdgeList() {
		fmt.Fprintf(w, "%d %d\n", e[0], e[1])
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
}

func generate(family, ds string, scale float64, n, n2, m, k int, exponent float64, scaleBits uint, seed int64) (*graph.Graph, error) {
	if ds != "" {
		spec, err := dataset.ByName(ds)
		if err != nil {
			return nil, err
		}
		return spec.Generate(scale), nil
	}
	switch family {
	case "er":
		return gen.ErdosRenyi(n, m, seed), nil
	case "chunglu":
		return gen.ChungLu(n, m, exponent, seed), nil
	case "ba":
		return gen.BarabasiAlbert(n, k, seed), nil
	case "rmat":
		return gen.RMAT(scaleBits, m, 0.57, 0.19, 0.19, seed), nil
	case "bipartite":
		if n2 == 0 {
			n2 = n
		}
		return gen.Bipartite(n, n2, m, seed), nil
	case "":
		return nil, fmt.Errorf("one of -family or -dataset is required")
	default:
		return nil, fmt.Errorf("unknown family %q (want er, chunglu, ba, rmat, bipartite)", family)
	}
}
