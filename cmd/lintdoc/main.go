// Command lintdoc enforces the godoc contract from ISSUE 4: every exported
// identifier in the packages it is pointed at must carry a doc comment.
// It is the stdlib equivalent of revive's `exported` rule (the container
// bakes in no third-party linters), gated to the packages whose exported
// surface doubles as the paper-concept glossary — internal/graph and
// internal/core — rather than the whole module.
//
// Usage:
//
//	lintdoc ./internal/graph ./internal/core
//
// Exit status 1 lists every exported const, var, type, func, method, and
// struct field of an exported type that lacks a doc comment. Test files
// are skipped: their exported helpers document themselves by use.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type miss struct {
	pos  token.Position
	what string
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdoc <package-dir>...")
		os.Exit(2)
	}
	var misses []miss
	for _, dir := range os.Args[1:] {
		ms, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdoc:", err)
			os.Exit(2)
		}
		misses = append(misses, ms...)
	}
	if len(misses) == 0 {
		fmt.Println("lintdoc: all exported identifiers documented")
		return
	}
	sort.Slice(misses, func(i, j int) bool {
		a, b := misses[i].pos, misses[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, m := range misses {
		fmt.Printf("%s:%d: %s\n", m.pos.Filename, m.pos.Line, m.what)
	}
	fmt.Fprintf(os.Stderr, "lintdoc: %d exported identifiers missing doc comments\n", len(misses))
	os.Exit(1)
}

func lintDir(dir string) ([]miss, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var misses []miss
	for _, pkg := range pkgs {
		for fname, file := range pkg.Files {
			misses = append(misses, lintFile(fset, filepath.ToSlash(fname), file)...)
		}
	}
	return misses, nil
}

func lintFile(fset *token.FileSet, fname string, file *ast.File) []miss {
	var misses []miss
	add := func(n ast.Node, format string, args ...any) {
		misses = append(misses, miss{pos: fset.Position(n.Pos()), what: fmt.Sprintf(format, args...)})
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			// Methods on unexported receivers are not exported surface.
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				add(d, "exported %s %s has no doc comment", kind, d.Name.Name)
			}
		case *ast.GenDecl:
			lintGenDecl(d, add)
		}
	}
	return misses
}

// lintGenDecl handles const/var/type blocks. A doc comment on the block
// covers its specs (idiomatic for const groups); otherwise each exported
// spec needs its own.
func lintGenDecl(d *ast.GenDecl, add func(n ast.Node, format string, args ...any)) {
	blockDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && !blockDoc && s.Doc == nil && s.Comment == nil {
					add(name, "exported %s %s has no doc comment", declKind(d.Tok), name.Name)
				}
			}
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !blockDoc && s.Doc == nil {
				add(s, "exported type %s has no doc comment", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				for _, f := range st.Fields.List {
					for _, fn := range f.Names {
						if fn.IsExported() && f.Doc == nil && f.Comment == nil {
							add(fn, "exported field %s.%s has no doc comment", s.Name.Name, fn.Name)
						}
					}
				}
			}
		}
	}
}

func declKind(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	}
	return tok.String()
}

func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
