package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dualsim/internal/baseline/psgl"
	"dualsim/internal/baseline/ttj"
	"dualsim/internal/core"
	"dualsim/internal/storage"
)

// cmdCompare runs DUALSIM, TwinTwigJoin, and PSgL on the same edge list and
// prints a comparison — the paper's experiment on the user's own graph.
func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	edges := fs.String("edges", "", "edge-list text file (u v per line)")
	qspec := fs.String("q", "q1", "query: q1..q5 or edge list 0-1,1-2,...")
	threads := fs.Int("threads", 0, "DUALSIM worker threads")
	buffer := fs.Float64("buffer", 0.15, "DUALSIM buffer fraction")
	workers := fs.Int("workers", 1, "simulated machines for the baselines")
	memMB := fs.Int64("mem", 256, "per-machine memory for the baselines (MiB)")
	fs.Parse(args)
	if *edges == "" {
		return fmt.Errorf("compare: -edges is required")
	}
	q, err := parseQuery(*qspec)
	if err != nil {
		return err
	}

	n, m, err := storage.ScanEdgeFile(*edges)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edge lines; query %s\n\n", n, m, q.Name())

	tmp, err := os.MkdirTemp("", "dualsim-compare-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// DUALSIM: build the database, then run disk-based.
	src := storage.NewFileSource(*edges, n)
	defer src.Close()
	dbPath := tmp + "/graph.db"
	buildStart := time.Now()
	if _, err := storage.Build(dbPath, src, storage.BuildOptions{TempDir: tmp}); err != nil {
		return err
	}
	buildTime := time.Since(buildStart)
	db, err := storage.Open(dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	eng, err := core.NewEngine(db, core.Options{Threads: *threads, BufferFraction: *buffer})
	if err != nil {
		return err
	}
	res, err := eng.Run(q)
	eng.Close()
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %12s  count=%d  (preprocess %v, %d page reads, %d-frame buffer)\n",
		"DUALSIM", res.ExecTime.Round(time.Microsecond), res.Count, buildTime.Round(time.Millisecond),
		res.IO.PhysicalReads, res.BufferFrames)

	// Baselines run on the reordered in-memory graph.
	g, err := db.LoadGraph()
	if err != nil {
		return err
	}
	memory := *memMB << 20

	if cnt, stats, err := ttj.Run(g, q, ttj.Options{
		Workers: *workers, TempDir: tmp, MemoryPerWorker: memory,
	}); err != nil {
		fmt.Printf("%-14s failed: %v\n", "TwinTwigJoin", err)
	} else {
		mark := ""
		if cnt != res.Count {
			mark = "  COUNT MISMATCH"
		}
		fmt.Printf("%-14s %12s  count=%d  (%d intermediate results)%s\n",
			"TwinTwigJoin", stats.Elapsed.Round(time.Microsecond), cnt, stats.TotalIntermediate, mark)
	}

	if cnt, stats, err := psgl.Run(g, q, psgl.Options{
		Workers: *workers, MemoryPerWorker: memory,
	}); err != nil {
		fmt.Printf("%-14s failed: %v\n", "PSgL", err)
	} else {
		mark := ""
		if cnt != res.Count {
			mark = "  COUNT MISMATCH"
		}
		fmt.Printf("%-14s %12s  count=%d  (%d partial instances)%s\n",
			"PSgL", stats.Elapsed.Round(time.Microsecond), cnt, stats.PartialInstances, mark)
	}
	return nil
}
