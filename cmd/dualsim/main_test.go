package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dualsim"
)

func TestParseQueryCatalog(t *testing.T) {
	for _, spec := range []string{"q1", "q2", "q3", "q4", "q5", "triangle", "house"} {
		q, err := parseQuery(spec)
		if err != nil {
			t.Errorf("parseQuery(%q): %v", spec, err)
			continue
		}
		if q.NumVertices() == 0 {
			t.Errorf("parseQuery(%q): empty query", spec)
		}
	}
}

func TestParseQueryEdgeList(t *testing.T) {
	q, err := parseQuery("0-1,1-2,0-2")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != 3 || q.NumEdges() != 3 {
		t.Fatalf("custom triangle: %d vertices %d edges", q.NumVertices(), q.NumEdges())
	}
	// Whitespace tolerated.
	if _, err := parseQuery("0-1, 1-2, 2-0"); err != nil {
		t.Fatal(err)
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, spec := range []string{"", "q9", "0-", "a-b", "0-1,5-5", "0-1 2-3"} {
		if _, err := parseQuery(spec); err == nil {
			t.Errorf("parseQuery(%q): expected error", spec)
		}
	}
	// Disconnected custom query.
	if _, err := parseQuery("0-1,2-3"); err == nil {
		t.Error("disconnected query accepted")
	}
}

// buildTestDB writes a small graph (two triangles sharing an edge plus a
// tail) and builds a database from it.
func buildTestDB(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	edgeFile := filepath.Join(dir, "edges.txt")
	content := "0 1\n1 2\n0 2\n1 3\n2 3\n3 4\n"
	if err := os.WriteFile(edgeFile, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	dbPath := filepath.Join(dir, "g.db")
	if _, err := dualsim.BuildFromEdgeFile(dbPath, edgeFile, dualsim.BuildOptions{PageSize: 128, TempDir: dir}); err != nil {
		t.Fatal(err)
	}
	return dbPath
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns what
// it wrote.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	return <-done
}

// TestCmdQueryJSON runs `run -json -trace` end to end: stdout must be one
// JSON object carrying the result and the metrics snapshot, and the trace
// file must be valid JSONL bracketed by run_start/run_end.
func TestCmdQueryJSON(t *testing.T) {
	dbPath := buildTestDB(t)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	var cmdErr error
	out := captureStdout(t, func() {
		cmdErr = cmdQuery([]string{"-db", dbPath, "-q", "q1", "-frames", "8", "-json", "-trace", tracePath})
	})
	if cmdErr != nil {
		t.Fatal(cmdErr)
	}
	var res struct {
		Count   uint64 `json:"count"`
		Metrics *struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("stdout is not one JSON object: %v\n%s", err, out)
	}
	if res.Count != 2 {
		t.Errorf("count = %d, want 2 triangles", res.Count)
	}
	if res.Metrics == nil {
		t.Fatal("metrics snapshot missing from JSON output")
	}
	if res.Metrics.Counters["dualsim_pages_read_total"] == 0 {
		t.Error("dualsim_pages_read_total = 0 in JSON output")
	}
	if res.Metrics.Counters["dualsim_windows_total"] == 0 {
		t.Error("dualsim_windows_total = 0 in JSON output")
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var events []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("corrupt trace line %q: %v", sc.Text(), err)
		}
		events = append(events, e.Event)
	}
	if len(events) < 2 || events[0] != "run_start" || events[len(events)-1] != "run_end" {
		t.Errorf("trace events = %v, want run_start ... run_end", events)
	}
}

// TestCmdQueryHumanOutput keeps the default text output intact.
func TestCmdQueryHumanOutput(t *testing.T) {
	dbPath := buildTestDB(t)
	var cmdErr error
	out := captureStdout(t, func() {
		cmdErr = cmdQuery([]string{"-db", dbPath, "-q", "q1", "-frames", "8"})
	})
	if cmdErr != nil {
		t.Fatal(cmdErr)
	}
	if want := "query q1-triangle: 2 occurrences"; !strings.Contains(out, want) {
		t.Errorf("output %q missing %q", out, want)
	}
}

// TestUsageListsAllSubcommands keeps the usage text in sync with the
// dispatcher: every subcommand main routes must be advertised.
func TestUsageListsAllSubcommands(t *testing.T) {
	var buf strings.Builder
	usageTo(&buf)
	out := buf.String()
	for _, sub := range []string{"build", "run", "serve", "stats", "verify", "compare"} {
		if !strings.Contains(out, "dualsim "+sub) {
			t.Errorf("usage does not list subcommand %q:\n%s", sub, out)
		}
	}
}

// TestCmdServeRoundTrip exercises the serve subcommand end to end inside the
// test process: start it on a free port, read the bound address off stdout,
// post a query, then deliver SIGTERM and require a clean (nil-error) drain.
func TestCmdServeRoundTrip(t *testing.T) {
	dbPath := buildTestDB(t)

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	served := make(chan error, 1)
	go func() {
		served <- cmdServe([]string{"-db", dbPath, "-addr", "127.0.0.1:0", "-engines", "2", "-frames", "16", "-drain-timeout", "10s"})
	}()

	// The first stdout line carries the bound address.
	line, err := bufio.NewReader(r).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(line)
	var addr string
	for i, f := range fields {
		if f == "on" && i+1 < len(fields) {
			addr = fields[i+1]
		}
	}
	if addr == "" {
		t.Fatalf("no address in serve output %q", line)
	}

	resp, err := http.Post("http://"+addr+"/query", "application/json",
		strings.NewReader(`{"query":"q1"}`))
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Count uint64 `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Count != 2 {
		t.Errorf("served count = %d, want 2 triangles", res.Count)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("cmdServe returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cmdServe did not drain after SIGTERM")
	}
	w.Close()
}
