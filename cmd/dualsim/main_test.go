package main

import "testing"

func TestParseQueryCatalog(t *testing.T) {
	for _, spec := range []string{"q1", "q2", "q3", "q4", "q5", "triangle", "house"} {
		q, err := parseQuery(spec)
		if err != nil {
			t.Errorf("parseQuery(%q): %v", spec, err)
			continue
		}
		if q.NumVertices() == 0 {
			t.Errorf("parseQuery(%q): empty query", spec)
		}
	}
}

func TestParseQueryEdgeList(t *testing.T) {
	q, err := parseQuery("0-1,1-2,0-2")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != 3 || q.NumEdges() != 3 {
		t.Fatalf("custom triangle: %d vertices %d edges", q.NumVertices(), q.NumEdges())
	}
	// Whitespace tolerated.
	if _, err := parseQuery("0-1, 1-2, 2-0"); err != nil {
		t.Fatal(err)
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, spec := range []string{"", "q9", "0-", "a-b", "0-1,5-5", "0-1 2-3"} {
		if _, err := parseQuery(spec); err == nil {
			t.Errorf("parseQuery(%q): expected error", spec)
		}
	}
	// Disconnected custom query.
	if _, err := parseQuery("0-1,2-3"); err == nil {
		t.Error("disconnected query accepted")
	}
}
