// Command dualsim builds graph databases and enumerates subgraphs with the
// DUALSIM engine.
//
// Usage:
//
//	dualsim build  -edges edges.txt -db graph.db [-pagesize 4096] [-compress]
//	dualsim run    -db graph.db -q q1 [-threads 4] [-buffer 0.15] [-timeout 30s] [-print]
//	               [-json] [-profile] [-eager-decode] [-metrics-addr :8080] [-trace events.jsonl] [-progress 1s]
//	dualsim serve  -db graph.db -addr :8372 [-engines 4] [-queue 16] [-row-limit 100000]
//	               [-trace spans.jsonl] [-slow-query 500ms]
//	dualsim stats  -db graph.db
//	dualsim verify -db graph.db
//	dualsim compare -edges edges.txt -q q4    # DUALSIM vs TTJ vs PSgL
//	dualsim -version
//
// Queries are q1 (triangle), q2 (square), q3 (chordal square), q4
// (4-clique), q5 (house), or an explicit edge list like "0-1,1-2,0-2".
// "query" is an alias for "run".
//
// Exit codes: 0 success, 1 generic error, 2 usage, 3 corruption detected,
// 4 I/O error, 124 run timed out, 130 interrupted (Ctrl-C).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualsim"
	"dualsim/internal/buildinfo"
)

// Exit codes beyond the conventional 0/1/2.
const (
	exitCorrupt     = 3   // verify/query found corrupt pages
	exitIO          = 4   // unreadable pages (device trouble)
	exitTimeout     = 124 // run exceeded -timeout (as in coreutils timeout)
	exitInterrupted = 130 // canceled by SIGINT (128 + 2)
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "run", "query":
		err = cmdQuery(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	case "-version", "--version", "version":
		fmt.Println("dualsim " + buildinfo.String())
		return
	default:
		fmt.Fprintf(os.Stderr, "dualsim: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dualsim: %v\n", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps the error taxonomy onto distinct process exit codes so
// scripts can tell corruption from device trouble from interruption.
func exitCode(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		return exitInterrupted
	case errors.Is(err, context.DeadlineExceeded):
		return exitTimeout
	}
	if _, ok := dualsim.IsCorrupt(err); ok {
		return exitCorrupt
	}
	var ioe *dualsim.IOError
	if errors.As(err, &ioe) {
		return exitIO
	}
	return 1
}

// runContext returns a context canceled by SIGINT/SIGTERM, so a Ctrl-C
// unwinds the engine cleanly (pins released, I/O drained) instead of
// killing the process mid-read.
func runContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func usage() { usageTo(os.Stderr) }

func usageTo(w io.Writer) {
	fmt.Fprintln(w, `usage:
  dualsim build  -edges <edges.txt> -db <graph.db> [-pagesize N] [-compress]
  dualsim run    -db <graph.db> -q <q1..q5|edge list> [-threads N] [-buffer F] [-frames N] [-prefetch N] [-timeout D]
                 [-retries N] [-print] [-json] [-profile] [-eager-decode] [-metrics-addr :8080] [-trace events.jsonl] [-progress 1s]
  dualsim serve  -db <graph.db> [-addr :8372] [-engines N] [-queue N] [-queue-wait D] [-row-limit N]
                 [-plan-cache N] [-buffer F] [-frames N] [-prefetch N] [-threads N] [-drain-timeout D]
                 [-trace spans.jsonl] [-slow-query D] [-slowlog-size N] [-slowlog-top N]
                 [-share-scan] [-cohort-riders N] [-cohort-wait D]
                 [-mutable] [-compact-every N] [-compact-compress]
  dualsim -version
  dualsim stats  -db <graph.db>
  dualsim verify -db <graph.db>
  dualsim compare -edges <edges.txt> -q <query> [-workers N] [-mem MiB]

"query" is an alias for "run". Exit codes: 3 corruption, 4 I/O error,
124 timeout, 130 interrupted.`)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	edges := fs.String("edges", "", "edge-list text file (u v per line)")
	db := fs.String("db", "", "output database path")
	pageSize := fs.Int("pagesize", 4096, "page size in bytes")
	compress := fs.Bool("compress", false, "store adjacency lists delta+varint compressed (with skip pointers)")
	fs.Parse(args)
	if *edges == "" || *db == "" {
		return fmt.Errorf("build: -edges and -db are required")
	}
	stats, err := dualsim.BuildFromEdgeFile(*db, *edges, dualsim.BuildOptions{PageSize: *pageSize, Compress: *compress})
	if err != nil {
		return err
	}
	fmt.Printf("built %s: %d vertices, %d edges, %d pages (max degree %d) in %v\n",
		*db, stats.NumVertices, stats.NumEdges, stats.NumPages, stats.MaxDegree, stats.Elapsed)
	return nil
}

func parseQuery(spec string) (*dualsim.Query, error) {
	return dualsim.ParseQuery(spec)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	qspec := fs.String("q", "q1", "query: q1..q5 or edge list 0-1,1-2,...")
	threads := fs.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	buffer := fs.Float64("buffer", 0.15, "buffer size as a fraction of the database")
	frames := fs.Int("frames", 0, "buffer frames (overrides -buffer)")
	prefetch := fs.Int("prefetch", 0, "frames per level carved out for cross-window prefetch (0 = off)")
	timeout := fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	retries := fs.Int("retries", 0, "retry transient read failures up to N times (0 = no retry layer)")
	windowRetries := fs.Int("window-retries", 0, "reload a window up to N times when a transient fault outlives -retries (0 = off)")
	eagerDecode := fs.Bool("eager-decode", false, "decode compressed adjacency at page-parse time instead of running the compressed-domain kernels (ablation)")
	print := fs.Bool("print", false, "print each embedding")
	profile := fs.Bool("profile", false, "attribute costs to the run and print a per-query cost profile")
	jsonOut := fs.Bool("json", false, "emit the result and metrics snapshot as one JSON object on stdout")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run")
	traceFile := fs.String("trace", "", "write a JSONL window/stage trace to this file")
	progress := fs.Duration("progress", 0, "print a progress line to stderr every interval (0 = off)")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("run: -db is required")
	}
	q, err := parseQuery(*qspec)
	if err != nil {
		return err
	}
	db, err := dualsim.Open(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	opts := dualsim.Options{
		Threads:          *threads,
		BufferFraction:   *buffer,
		BufferFrames:     *frames,
		PrefetchFrames:   *prefetch,
		Timeout:          *timeout,
		WindowRetries:    *windowRetries,
		EagerDecode:      *eagerDecode,
		MetricsAddr:      *metricsAddr,
		Profile:          *profile,
		ProgressInterval: *progress,
	}
	if *retries > 0 {
		opts.Retry = &dualsim.RetryPolicy{MaxRetries: *retries}
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("run: creating trace file: %w", err)
		}
		defer f.Close()
		opts.TraceWriter = f
	}

	ctx, stop := runContext()
	defer stop()

	var res *dualsim.Result
	if *print {
		res, err = db.EnumerateContext(ctx, q, opts, func(m dualsim.Embedding) {
			fmt.Println(m)
		})
	} else {
		eng, engErr := db.NewEngine(opts)
		if engErr != nil {
			return engErr
		}
		defer eng.Close()
		if addr := eng.MetricsAddr(); addr != "" {
			fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
		}
		res, err = eng.RunContext(ctx, q)
		if st := eng.RetryStats(); st.Retries > 0 || st.CRCRereads > 0 {
			fmt.Fprintf(os.Stderr, "retry layer: %d retries, %d CRC re-reads, %d reads recovered\n",
				st.Retries, st.CRCRereads, st.Recovered)
		}
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Printf("query %s: %d occurrences (%d internal, %d external)\n",
		q.Name(), res.Count, res.Internal, res.External)
	fmt.Printf("prep %v, exec %v, %d physical reads, %d frames, %d level-1 windows, %d red vertices in %d v-groups\n",
		res.PrepTime, res.ExecTime, res.PhysicalReads, res.BufferFrames, res.Level1Windows,
		res.RedVertices, res.VGroups)
	if res.WindowRetries > 0 {
		fmt.Printf("recovered from transient faults via %d window retries\n", res.WindowRetries)
	}
	if res.Profile != nil {
		fmt.Println("--- cost profile ---")
		res.Profile.WriteReport(os.Stdout)
	}
	return nil
}

// cmdServe runs the long-lived query service until SIGINT/SIGTERM, then
// drains gracefully: in-flight queries finish (bounded by -drain-timeout),
// new requests get 503, and the process exits 0.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	addr := fs.String("addr", ":8372", "listen address (\":0\" picks a free port)")
	engines := fs.Int("engines", 0, "engine pool size = concurrent queries (0 = default 2)")
	queue := fs.Int("queue", 0, "admission queue depth (0 = 4x engines)")
	queueWait := fs.Duration("queue-wait", 0, "max time a queued request waits for an engine (0 = 2s)")
	rowLimit := fs.Int("row-limit", 0, "cap on streamed embedding rows per request (0 = 100000)")
	planCache := fs.Int("plan-cache", 0, "plan cache entries (0 = 64)")
	buffer := fs.Float64("buffer", 0.15, "global buffer budget as a fraction of the database, divided across engines")
	frames := fs.Int("frames", 0, "global buffer budget in frames (overrides -buffer), divided across engines")
	prefetch := fs.Int("prefetch", 0, "frames per level carved out for cross-window prefetch, per engine (0 = off)")
	threads := fs.Int("threads", 0, "worker threads per engine (0 = GOMAXPROCS/engines)")
	retries := fs.Int("retries", 0, "retry transient read failures up to N times (0 = no retry layer)")
	windowRetries := fs.Int("window-retries", 0, "reload a window up to N times when a transient fault outlives -retries (0 = off)")
	resumeEvery := fs.Int("resume-every", 0, "emit a resume_token record every Nth checkpoint in embeddings streams (0 = every checkpoint, <0 = suppress)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "circuit-breaker open -> half-open delay (0 = 1s)")
	traceFile := fs.String("trace", "", "write the service-wide JSONL span trace to this file (flushed on drain)")
	slowQuery := fs.Duration("slow-query", 0, "slow-query log threshold (0 = 500ms, negative = record all)")
	slowlogSize := fs.Int("slowlog-size", 0, "slow-query ring entries (0 = 64)")
	slowlogTop := fs.Int("slowlog-top", 0, "heaviest-queries-by-pages leaderboard size (0 = 8)")
	shareScan := fs.Bool("share-scan", false, "share one level-1 window sweep across concurrent queries (one big buffer, N riders)")
	cohortRiders := fs.Int("cohort-riders", 0, "max queries riding one shared sweep (0 = 4; needs -share-scan)")
	cohortWait := fs.Duration("cohort-wait", 0, "how long a fresh cohort holds the doors for more riders (0 = 10ms)")
	mutable := fs.Bool("mutable", false, "enable live ingest: POST /edges applies edge inserts/deletes via a delta overlay, bumping the data epoch")
	compactEvery := fs.Int("compact-every", 0, "overlay ops that trigger a background compaction into a fresh file (0 = manual via POST /admin/compact; needs -mutable)")
	compactCompress := fs.Bool("compact-compress", false, "store compacted files delta+varint compressed")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to let in-flight queries finish after SIGTERM")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("serve: -db is required")
	}
	db, err := dualsim.Open(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	engOpts := dualsim.Options{
		Threads:        *threads,
		BufferFraction: *buffer,
		BufferFrames:   *frames,
		PrefetchFrames: *prefetch,
		WindowRetries:  *windowRetries,
	}
	if *retries > 0 {
		engOpts.Retry = &dualsim.RetryPolicy{MaxRetries: *retries}
	}
	cfg := dualsim.ServerConfig{
		Engines:             *engines,
		QueueDepth:          *queue,
		QueueWait:           *queueWait,
		RowLimit:            *rowLimit,
		PlanCacheSize:       *planCache,
		ResumeTokenEvery:    *resumeEvery,
		BreakerCooldown:     *breakerCooldown,
		SlowQueryThreshold:  *slowQuery,
		SlowLogSize:         *slowlogSize,
		SlowLogTopK:         *slowlogTop,
		ShareScan:           *shareScan,
		CohortMaxRiders:     *cohortRiders,
		CohortFormationWait: *cohortWait,
		Mutable:             *mutable,
		CompactEvery:        *compactEvery,
		CompactCompress:     *compactCompress,
		Engine:              engOpts,
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("serve: creating trace file: %w", err)
		}
		defer f.Close()
		cfg.TraceWriter = f
	}
	srv, err := db.NewServer(cfg)
	if err != nil {
		return err
	}
	if err := srv.Listen(*addr); err != nil {
		return err
	}
	// The bound address goes to stdout so scripts using -addr :0 can read
	// the port back.
	endpoints := "POST /query, GET /stats, GET /metrics"
	if *mutable {
		endpoints = "POST /query, POST /edges, GET /stats, GET /metrics"
	}
	fmt.Printf("serving %s on %s (%s)\n", *dbPath, srv.Addr(), endpoints)

	ctx, stop := runContext()
	defer stop()
	<-ctx.Done()
	stop() // further signals kill the process the usual way
	fmt.Fprintf(os.Stderr, "draining (up to %v)...\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("stats: -db is required")
	}
	db, err := dualsim.Open(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("vertices: %d\nedges:    %d\npages:    %d (x %d bytes)\n",
		db.NumVertices(), db.NumEdges(), db.NumPages(), db.PageSize())
	st, err := db.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("records:  %d (%d vertices span multiple pages)\nfill:     %.1f%%\n",
		st.Records, st.SplitVertices, 100*st.FillFactor)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("verify: -db is required")
	}
	db, err := dualsim.Open(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()

	// Physical pass first: every page is read and checksummed, and ALL bad
	// pages are reported (not just the first), so an operator sees the full
	// extent of the damage in one run.
	rep := db.VerifyPages()
	fmt.Printf("scanned %d pages\n", rep.PagesScanned)
	for _, ce := range rep.Corrupt {
		fmt.Printf("page %d: checksum mismatch (stored %08x, computed %08x)\n",
			ce.Page, ce.StoredCRC, ce.ComputedCRC)
	}
	for _, ioe := range rep.IOErrors {
		fmt.Printf("page %d: unreadable: %v\n", ioe.Page, ioe.Err)
	}
	if err := rep.Err(); err != nil {
		return err
	}

	// Structural pass: directory spans, record ordering, adjacency bounds.
	if err := db.Verify(); err != nil {
		return err
	}
	fmt.Println("ok")
	return nil
}
