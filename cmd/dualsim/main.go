// Command dualsim builds graph databases and enumerates subgraphs with the
// DUALSIM engine.
//
// Usage:
//
//	dualsim build  -edges edges.txt -db graph.db [-pagesize 4096]
//	dualsim query  -db graph.db -q q1 [-threads 4] [-buffer 0.15] [-print]
//	dualsim stats  -db graph.db
//	dualsim verify -db graph.db
//	dualsim compare -edges edges.txt -q q4    # DUALSIM vs TTJ vs PSgL
//
// Queries are q1 (triangle), q2 (square), q3 (chordal square), q4
// (4-clique), q5 (house), or an explicit edge list like "0-1,1-2,0-2".
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dualsim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "dualsim: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dualsim: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dualsim build  -edges <edges.txt> -db <graph.db> [-pagesize N]
  dualsim query  -db <graph.db> -q <q1..q5|edge list> [-threads N] [-buffer F] [-frames N] [-print]
  dualsim stats  -db <graph.db>
  dualsim verify -db <graph.db>
  dualsim compare -edges <edges.txt> -q <query> [-workers N] [-mem MiB]`)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	edges := fs.String("edges", "", "edge-list text file (u v per line)")
	db := fs.String("db", "", "output database path")
	pageSize := fs.Int("pagesize", 4096, "page size in bytes")
	fs.Parse(args)
	if *edges == "" || *db == "" {
		return fmt.Errorf("build: -edges and -db are required")
	}
	stats, err := dualsim.BuildFromEdgeFile(*db, *edges, dualsim.BuildOptions{PageSize: *pageSize})
	if err != nil {
		return err
	}
	fmt.Printf("built %s: %d vertices, %d edges, %d pages (max degree %d) in %v\n",
		*db, stats.NumVertices, stats.NumEdges, stats.NumPages, stats.MaxDegree, stats.Elapsed)
	return nil
}

func parseQuery(spec string) (*dualsim.Query, error) {
	if q, err := dualsim.QueryByName(spec); err == nil {
		return q, nil
	}
	// Explicit edge list: "0-1,1-2,0-2".
	var edges [][2]int
	maxV := -1
	for _, part := range strings.Split(spec, ",") {
		uv := strings.SplitN(strings.TrimSpace(part), "-", 2)
		if len(uv) != 2 {
			return nil, fmt.Errorf("bad query edge %q (want e.g. 0-1,1-2,0-2)", part)
		}
		u, err := strconv.Atoi(uv[0])
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(uv[1])
		if err != nil {
			return nil, err
		}
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
		edges = append(edges, [2]int{u, v})
	}
	return dualsim.NewQuery("custom", maxV+1, edges)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	qspec := fs.String("q", "q1", "query: q1..q5 or edge list 0-1,1-2,...")
	threads := fs.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	buffer := fs.Float64("buffer", 0.15, "buffer size as a fraction of the database")
	frames := fs.Int("frames", 0, "buffer frames (overrides -buffer)")
	print := fs.Bool("print", false, "print each embedding")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("query: -db is required")
	}
	q, err := parseQuery(*qspec)
	if err != nil {
		return err
	}
	db, err := dualsim.Open(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	opts := dualsim.Options{Threads: *threads, BufferFraction: *buffer, BufferFrames: *frames}

	var res *dualsim.Result
	if *print {
		res, err = db.Enumerate(q, opts, func(m dualsim.Embedding) {
			fmt.Println(m)
		})
	} else {
		eng, engErr := db.NewEngine(opts)
		if engErr != nil {
			return engErr
		}
		defer eng.Close()
		res, err = eng.Run(q)
	}
	if err != nil {
		return err
	}
	fmt.Printf("query %s: %d occurrences (%d internal, %d external)\n",
		q.Name(), res.Count, res.Internal, res.External)
	fmt.Printf("prep %v, exec %v, %d physical reads, %d frames, %d level-1 windows, %d red vertices in %d v-groups\n",
		res.PrepTime, res.ExecTime, res.PhysicalReads, res.BufferFrames, res.Level1Windows,
		res.RedVertices, res.VGroups)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("stats: -db is required")
	}
	db, err := dualsim.Open(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("vertices: %d\nedges:    %d\npages:    %d (x %d bytes)\n",
		db.NumVertices(), db.NumEdges(), db.NumPages(), db.PageSize())
	st, err := db.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("records:  %d (%d vertices span multiple pages)\nfill:     %.1f%%\n",
		st.Records, st.SplitVertices, 100*st.FillFactor)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("verify: -db is required")
	}
	db, err := dualsim.Open(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	if err := db.Verify(); err != nil {
		return err
	}
	fmt.Println("ok")
	return nil
}
