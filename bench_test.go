package dualsim

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (run via the exp harness at a reduced scale so `go test
// -bench=.` completes on a laptop), plus engine micro-benchmarks and the
// ablation benches called out in DESIGN.md. `cmd/bench` runs the same
// experiments at full reproduction scale and prints the paper-style tables.

import (
	"context"
	"errors"
	"io"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dualsim/internal/core"
	"dualsim/internal/dataset"
	"dualsim/internal/exp"
	"dualsim/internal/faultdb"
	"dualsim/internal/gen"
	"dualsim/internal/graph"
	"dualsim/internal/plan"
	"dualsim/internal/rbi"
	"dualsim/internal/sharedscan"
	"dualsim/internal/storage"
)

// benchCfg keeps experiment benchmarks laptop-fast.
func benchCfg(b *testing.B) exp.Config {
	b.Helper()
	return exp.Config{
		Scale:          0.05,
		TempDir:        b.TempDir(),
		Threads:        2,
		ClusterWorkers: 4,
		PageSize:       512,
	}
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	x, err := exp.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := exp.NewEnv(cfg)
		t, err := x.Run(env)
		if err != nil {
			b.Fatal(err)
		}
		t.Fprint(io.Discard)
		env.Close()
	}
}

// --- one benchmark per paper table/figure -----------------------------------

func BenchmarkTable3Preprocessing(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkTable4Intermediate(b *testing.B)         { benchExperiment(b, "table4") }
func BenchmarkTable5Estimated(b *testing.B)            { benchExperiment(b, "table5") }
func BenchmarkTable6Preparation(b *testing.B)          { benchExperiment(b, "table6") }
func BenchmarkFig9BufferSize(b *testing.B)             { benchExperiment(b, "fig9") }
func BenchmarkFig10SingleMachineDatasets(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11SingleMachineQueries(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12GraphSize(b *testing.B)             { benchExperiment(b, "fig12") }
func BenchmarkFig13Cluster(b *testing.B)               { benchExperiment(b, "fig13") }
func BenchmarkFig14ClusterQueries(b *testing.B)        { benchExperiment(b, "fig14") }
func BenchmarkFig15ClusterGraphSize(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16Speedup(b *testing.B)               { benchExperiment(b, "fig16") }
func BenchmarkFig17VsOPT(b *testing.B)                 { benchExperiment(b, "fig17") }
func BenchmarkFig18ClusterQ2Q3(b *testing.B)           { benchExperiment(b, "fig18") }
func BenchmarkEvolvingGraphDegradation(b *testing.B)   { benchExperiment(b, "evolving") }

// --- engine micro-benchmarks -------------------------------------------------

// benchDB builds the LJ stand-in once per benchmark.
func benchDB(b *testing.B, scale float64) *storage.DB {
	b.Helper()
	spec, err := dataset.ByName("LJ")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Generate(scale)
	dir := b.TempDir()
	path := filepath.Join(dir, "lj.db")
	if _, err := storage.BuildFromGraph(path, g, storage.BuildOptions{PageSize: 1024, TempDir: dir}); err != nil {
		b.Fatal(err)
	}
	db, err := storage.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func benchEngineQuery(b *testing.B, q *graph.Query, opts core.Options) {
	b.Helper()
	db := benchDB(b, 0.1)
	if opts.Threads == 0 {
		opts.Threads = 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := core.NewEngine(db, opts)
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run(q)
		eng.Close()
		if err != nil {
			b.Fatal(err)
		}
		if res.Count == 0 && q.NumEdges() < 5 {
			b.Fatal("suspicious zero count")
		}
	}
}

func BenchmarkEngineTriangle(b *testing.B) { benchEngineQuery(b, graph.Triangle(), core.Options{}) }
func BenchmarkEngineClique4(b *testing.B)  { benchEngineQuery(b, graph.Clique4(), core.Options{}) }
func BenchmarkEngineHouse(b *testing.B)    { benchEngineQuery(b, graph.House(), core.Options{}) }

// BenchmarkEnumerate measures a full run through the public API. The
// "baseline" variant has every observability feature off — the guardrail for
// the instrumented engine's disabled-path cost — while "traced" pays for a
// JSONL trace of every window event.
func BenchmarkEnumerate(b *testing.B) {
	run := func(b *testing.B, opts Options) {
		b.Helper()
		pub := &DB{db: benchDB(b, 0.1)}
		opts.Threads = 2
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng, err := pub.NewEngine(opts)
			if err != nil {
				b.Fatal(err)
			}
			res, err := eng.Run(Triangle())
			eng.Close()
			if err != nil {
				b.Fatal(err)
			}
			if res.Count == 0 {
				b.Fatal("suspicious zero count")
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, Options{}) })
	b.Run("traced", func(b *testing.B) { run(b, Options{TraceWriter: io.Discard}) })
}

// --- intersection kernel micro-benchmarks ------------------------------------
//
// These feed docs/BENCHMARKS.md (make bench-book). Each benchmark fixes a
// list-length shape and compares the three pairwise kernels; the adaptive
// entry shows which kernel the dispatch picks for that shape.

// benchIntersectLists builds two sorted duplicate-free lists. The large
// list holds the even numbers 0..2(nl-1); the small list's ns elements are
// spread evenly across that whole range (so a linear merge must walk all of
// the large list), with every third element bumped to an odd miss.
func benchIntersectLists(ns, nl int) (a, b []graph.VertexID) {
	a = make([]graph.VertexID, ns)
	stride := (2 * nl) / ns
	if stride < 2 {
		stride = 2
	}
	for i := range a {
		v := i * stride
		if i%3 == 0 {
			v++ // odd: guaranteed miss
		}
		a[i] = graph.VertexID(v)
	}
	b = make([]graph.VertexID, nl)
	for i := range b {
		b[i] = graph.VertexID(2 * i)
	}
	return a, b
}

func benchIntersectShape(b *testing.B, ns, nl int) {
	b.Helper()
	small, large := benchIntersectLists(ns, nl)
	dst := make([]graph.VertexID, 0, ns)
	kernels := []struct {
		name string
		fn   func(a, bb, dst []graph.VertexID) []graph.VertexID
	}{
		{"linear", graph.IntersectSortedLinear},
		{"gallop", graph.IntersectSortedGallop},
		{"adaptive", graph.IntersectSorted},
	}
	for _, k := range kernels {
		b.Run(k.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = k.fn(small, large, dst)
			}
			if len(dst) == 0 {
				b.Fatal("empty intersection; fixture broken")
			}
		})
	}
}

// BenchmarkIntersectBalanced: comparable list lengths — the linear merge's
// home turf; the dispatch must pick it.
func BenchmarkIntersectBalanced(b *testing.B) { benchIntersectShape(b, 4096, 8192) }

// BenchmarkIntersectSkewed: 64 vs 65536 (1024x) — a low-degree vertex
// against a hub; galloping territory.
func BenchmarkIntersectSkewed(b *testing.B) { benchIntersectShape(b, 64, 65536) }

// BenchmarkIntersectExtreme: 4 vs 1M — the paper-scale hub case from the
// skew test matrix (1-vs-10^6).
func BenchmarkIntersectExtreme(b *testing.B) { benchIntersectShape(b, 4, 1<<20) }

// BenchmarkIntersectCompressed: the skewed shape (64 vs 65536) with the hub
// list stored delta+varint compressed. "decode-then-intersect" pays a full
// decode of the hub list before the plain adaptive kernel runs;
// "compressed-domain" gallops over the encoded bytes via the skip table and
// never materializes the list. Alloc counts matter as much as time here:
// the compressed-domain path must not allocate per intersection.
func BenchmarkIntersectCompressed(b *testing.B) {
	small, large := benchIntersectLists(64, 65536)
	payload, hasSkips := graph.AppendCompressed(nil, large)
	comp, err := graph.ParseCompressed(payload, len(large), hasSkips)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]graph.VertexID, 0, len(small))
	b.Run("decode-then-intersect", func(b *testing.B) {
		b.ReportAllocs()
		scratch := make([]graph.VertexID, 0, len(large))
		for i := 0; i < b.N; i++ {
			scratch = comp.AppendTo(scratch[:0])
			dst = graph.IntersectSorted(small, scratch, dst)
		}
		if len(dst) == 0 {
			b.Fatal("empty intersection; fixture broken")
		}
	})
	b.Run("compressed-domain", func(b *testing.B) {
		b.ReportAllocs()
		var st graph.IntersectStats
		for i := 0; i < b.N; i++ {
			dst = graph.IntersectCompressed(small, comp, dst, &st)
		}
		if len(dst) == 0 {
			b.Fatal("empty intersection; fixture broken")
		}
	})
}

// BenchmarkIntersectKWay: a 4-list ivory intersection, smallest-first
// adaptive (arena) vs folding pairwise linear merges in given order.
func BenchmarkIntersectKWay(b *testing.B) {
	mk := func(step, n int) []graph.VertexID {
		out := make([]graph.VertexID, n)
		for i := range out {
			out[i] = graph.VertexID(step * i)
		}
		return out
	}
	lists := [][]graph.VertexID{mk(2, 200000), mk(3, 120000), mk(30, 400), mk(5, 60000)}
	b.Run("naive-ordered-linear", func(b *testing.B) {
		b.ReportAllocs()
		tmp := make([]graph.VertexID, 0, 200000)
		tmp2 := make([]graph.VertexID, 0, 200000)
		for i := 0; i < b.N; i++ {
			cur := graph.IntersectSortedLinear(lists[0], lists[1], tmp)
			cur = graph.IntersectSortedLinear(cur, lists[2], tmp2)
			cur = graph.IntersectSortedLinear(cur, lists[3], tmp)
			if len(cur) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("smallest-first-adaptive", func(b *testing.B) {
		b.ReportAllocs()
		ar := graph.NewArena()
		work := make([][]graph.VertexID, len(lists))
		for i := 0; i < b.N; i++ {
			copy(work, lists)
			if len(ar.IntersectK(0, work)) == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// BenchmarkWindowEnum is the tentpole's acceptance benchmark: 4-clique
// enumeration over the planted-hub skewed fixture with the whole database
// buffered, so in-window enumeration (not I/O) dominates. The 4-clique
// exercises every kernel: pairwise (2 red neighbors) and k-way (3 red
// neighbors) ivory intersections over hub-length adjacency lists. "seed"
// reproduces the seed engine's linear-merge kernels and static per-window
// partitioning; "adaptive" is the default engine (galloping/k-way kernels +
// bounded work-stealing). docs/BENCHMARKS.md records the measured ratio.
func BenchmarkWindowEnum(b *testing.B) {
	g := gen.PlantedHubs(30000, 24, 2500, 99)
	dir := b.TempDir()
	path := filepath.Join(dir, "hubs.db")
	bstats, err := storage.BuildFromGraph(path, g, storage.BuildOptions{PageSize: 4096, TempDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	db, err := storage.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })

	// The same fixture stored delta+varint compressed with skip tables —
	// the tentpole comparison. bytes/edge comes from a full file scan
	// (storage.FileStats.AdjBytes) and is attached to every variant's row
	// so the book can derive the plain→compressed reduction.
	cpath := filepath.Join(dir, "hubs-c.db")
	if _, err := storage.BuildFromGraph(cpath, g, storage.BuildOptions{PageSize: 4096, TempDir: dir, Compress: true}); err != nil {
		b.Fatal(err)
	}
	cdb, err := storage.Open(cpath)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cdb.Close() })
	bytesPerEdge := func(d *storage.DB) float64 {
		st, err := d.Stats()
		if err != nil {
			b.Fatal(err)
		}
		return float64(st.AdjBytes) / float64(d.NumEdges())
	}
	plainBPE, compBPE := bytesPerEdge(db), bytesPerEdge(cdb)

	runOn := func(b *testing.B, d *storage.DB, bpe float64, opts core.Options) {
		b.Helper()
		opts.Threads = 4
		opts.BufferFraction = 1.0
		eng, err := core.NewEngine(d, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		// Warm the buffer pool so every timed iteration measures in-window
		// enumeration, not first-touch I/O.
		if _, err := eng.Run(graph.Clique4()); err != nil {
			b.Fatal(err)
		}
		var windows int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.Run(graph.Clique4())
			if err != nil {
				b.Fatal(err)
			}
			if res.Count == 0 {
				b.Fatal("suspicious zero count")
			}
			windows = 0
			for _, w := range res.WindowsPerLevel {
				windows += w
			}
		}
		b.StopTimer()
		b.ReportMetric(bpe, "bytes/edge")
		b.ReportMetric(float64(windows), "windows/run")
	}
	run := func(b *testing.B, opts core.Options) {
		b.Helper()
		runOn(b, db, plainBPE, opts)
	}
	b.Run("seed", func(b *testing.B) {
		run(b, core.Options{LinearOnlyIntersect: true, StaticPartition: true})
	})
	b.Run("adaptive", func(b *testing.B) {
		run(b, core.Options{})
	})
	b.Run("kernels-only", func(b *testing.B) {
		run(b, core.Options{StaticPartition: true})
	})
	b.Run("stealing-only", func(b *testing.B) {
		run(b, core.Options{LinearOnlyIntersect: true})
	})
	// Compressed-storage variants on the identical fixture: "compressed" is
	// the default engine over the compressed database (last-level windows
	// keep encoded spans and the compressed-domain kernels consume them in
	// place); "compressed-eager" ablates the kernels by decoding every
	// record at window-load time, isolating the storage win from the
	// compute win. Counts are bit-identical across all four storage/kernel
	// combinations (asserted by TestAdaptiveMatchesSeedCounts).
	b.Run("compressed", func(b *testing.B) {
		runOn(b, cdb, compBPE, core.Options{})
	})
	b.Run("compressed-eager", func(b *testing.B) {
		runOn(b, cdb, compBPE, core.Options{EagerDecode: true})
	})
	// Attribution overhead: the full default engine with per-query cost
	// attribution on (every hot-path counter also lands in an obs.Scope).
	// The delta against "adaptive" is the price of observability; the
	// attribution-off price is one nil check per increment site and is
	// bounded at <=2% by the acceptance criteria.
	b.Run("adaptive-attributed", func(b *testing.B) {
		run(b, core.Options{Profile: true})
	})

	// I/O-bound variants: HDD-like simulated latency and a buffer far
	// smaller than the database, so every run churns windows and the
	// cross-window prefetch pipeline has device time to hide. The reported
	// io_wait_ms/op metric is the orchestrator time blocked in loadWindow —
	// the before/after number for the prefetch story in docs/EXPERIMENTS.md.
	runIO := func(b *testing.B, prefetch int) {
		b.Helper()
		eng, err := core.NewEngine(db, core.Options{
			Threads:        4,
			BufferFrames:   176,
			PrefetchFrames: prefetch,
			PerPageLatency: 200 * time.Microsecond,
			SeekLatency:    2 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		var ioWait time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.Run(graph.Clique4())
			if err != nil {
				b.Fatal(err)
			}
			if res.Count == 0 {
				b.Fatal("suspicious zero count")
			}
			ioWait += res.IOWait
		}
		b.StopTimer()
		b.ReportMetric(float64(ioWait.Milliseconds())/float64(b.N), "io_wait_ms/op")
	}
	b.Run("io-nopfetch", func(b *testing.B) { runIO(b, 0) })
	b.Run("io-prefetch", func(b *testing.B) { runIO(b, 16) })

	// Survivability variant: the same I/O-bound configuration on a device
	// injecting seeded transient-fault bursts (correlated failures, the
	// kind that outlive the read-retry budget and force whole-window
	// recoveries). window_retries/op is how many window retries each run
	// absorbed; the time/op gap against io-nopfetch is the price of
	// surviving them (failed attempts re-read only the faulted window,
	// not the run).
	b.Run("io-faulted", func(b *testing.B) {
		fdb := faultdb.Wrap(db, faultdb.Options{Seed: 7}).Chaos(faultdb.ChaosSchedule{
			FaultRate:  0.005,
			BurstEvery: 300,
			BurstLen:   40,
			BurstRate:  0.6,
		})
		eng, err := core.NewEngine(fdb, core.Options{
			Threads:        4,
			BufferFrames:   176,
			PerPageLatency: 200 * time.Microsecond,
			SeekLatency:    2 * time.Millisecond,
			Retry: &storage.RetryPolicy{
				MaxRetries: 1,
				Sleep:      func(time.Duration) {},
			},
			WindowRetries:    64,
			WindowRetrySleep: func(time.Duration) {},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		var retries uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.Run(graph.Clique4())
			if err != nil {
				b.Fatal(err)
			}
			if res.Count == 0 {
				b.Fatal("suspicious zero count")
			}
			retries += res.WindowRetries
		}
		b.StopTimer()
		b.ReportMetric(float64(retries)/float64(b.N), "window_retries/op")
	})

	// Shared-scan variants: the serving policy comparison behind -share-scan.
	// Both run 4 identical 4-clique queries against the same global budget of
	// 1.5x the database (so deep-level reads stay resident while the level-1
	// partition still splits into several windows). "solo-4q" is the "N small
	// buffers" policy — each query gets its own engine with a quarter of the
	// budget; "shared-4q" boards all 4 on one cohort engine holding the
	// undivided budget and sweeps once. Pools start cold every iteration, so
	// the pages/query metric is the physical cost of one arrival, and the
	// solo:shared ratio is the amortization the cohort buys (docs/BENCHMARKS.md
	// records the derived line).
	sharedFrames := bstats.NumPages * 3 / 2
	b.Run("solo-4q", func(b *testing.B) {
		var pages uint64
		for i := 0; i < b.N; i++ {
			for q := 0; q < 4; q++ {
				eng, err := core.NewEngine(db, core.Options{Threads: 4, BufferFrames: sharedFrames / 4})
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.Run(graph.Clique4())
				if err != nil {
					b.Fatal(err)
				}
				if res.Count == 0 {
					b.Fatal("suspicious zero count")
				}
				pages += eng.PoolStats().PhysicalReads
				eng.Close()
			}
		}
		b.ReportMetric(float64(pages)/float64(b.N*4), "pages/query")
	})
	b.Run("shared-4q", func(b *testing.B) {
		p, err := plan.Prepare(graph.Clique4(), plan.Options{})
		if err != nil {
			b.Fatal(err)
		}
		var pages uint64
		for i := 0; i < b.N; i++ {
			eng, err := core.NewEngine(db, core.Options{Threads: 4, BufferFrames: sharedFrames})
			if err != nil {
				b.Fatal(err)
			}
			sched := sharedscan.New(eng, sharedscan.Options{MaxRiders: 4, FormationWait: 2 * time.Millisecond})
			var wg sync.WaitGroup
			errs := make([]error, 4)
			for q := 0; q < 4; q++ {
				wg.Add(1)
				go func(q int) {
					defer wg.Done()
					res, err := sched.Run(context.Background(), core.RunSpec{Plan: p})
					if err == nil && res.Count == 0 {
						err = errors.New("suspicious zero count")
					}
					errs[q] = err
				}(q)
			}
			wg.Wait()
			sched.Close()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
			pages += eng.PoolStats().PhysicalReads
			eng.Close()
		}
		b.ReportMetric(float64(pages)/float64(b.N*4), "pages/query")
	})
}

// --- ablation benches (design choices from DESIGN.md §5) ----------------------

// BenchmarkAblationBufferAllocation compares the paper's buffer allocation
// with OPT's equal split (Figure 17's explanation).
func BenchmarkAblationBufferAllocation(b *testing.B) {
	b.Run("paper", func(b *testing.B) {
		benchEngineQuery(b, graph.Triangle(), core.Options{})
	})
	b.Run("equal", func(b *testing.B) {
		benchEngineQuery(b, graph.Triangle(), core.Options{EqualAllocation: true})
	})
}

// BenchmarkAblationMatchingOrder compares the Cartesian-minimizing global
// matching order with the worst one (Figure 4(a) vs 4(b)).
func BenchmarkAblationMatchingOrder(b *testing.B) {
	b.Run("best", func(b *testing.B) {
		benchEngineQuery(b, graph.House(), core.Options{})
	})
	b.Run("worst", func(b *testing.B) {
		benchEngineQuery(b, graph.House(), core.Options{WorstOrder: true})
	})
}

// BenchmarkAblationRBI compares red-vertex selection strategies on the
// square: the paper's MCVC (3 connected red vertices), plain MVC (2
// disconnected red vertices, forcing a Cartesian product), and no RBI at
// all (all 4 vertices matched by traversal — a full extra level).
func BenchmarkAblationRBI(b *testing.B) {
	b.Run("mcvc", func(b *testing.B) {
		benchEngineQuery(b, graph.Square(), core.Options{CoverMode: rbi.MCVC})
	})
	b.Run("mvc", func(b *testing.B) {
		benchEngineQuery(b, graph.Square(), core.Options{CoverMode: rbi.MVC})
	})
	b.Run("allred", func(b *testing.B) {
		benchEngineQuery(b, graph.Square(), core.Options{CoverMode: rbi.AllRed})
	})
}

// BenchmarkAblationVGroup quantifies the v-group sequencing win: the house
// query has 3 full-order sequences in 2 v-groups, so per-sequence matching
// would re-traverse; the diamond (1 group) is the control.
func BenchmarkAblationVGroup(b *testing.B) {
	b.Run("house-2groups", func(b *testing.B) {
		benchEngineQuery(b, graph.House(), core.Options{})
	})
	b.Run("diamond-1group", func(b *testing.B) {
		benchEngineQuery(b, graph.ChordalSquare(), core.Options{})
	})
}

// --- substrate micro-benchmarks ------------------------------------------------

func BenchmarkBuildDatabase(b *testing.B) {
	spec, err := dataset.ByName("LJ")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Generate(0.1)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, "bench.db")
		if _, err := storage.BuildFromGraph(path, g, storage.BuildOptions{PageSize: 1024, TempDir: dir}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteForceReference(b *testing.B) {
	spec, err := dataset.ByName("LJ")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Generate(0.1)
	rg, _ := graph.ReorderByDegree(g)
	po := graph.SymmetryBreak(graph.Triangle())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.BruteForceCount(rg, graph.Triangle(), po)
	}
}

// BenchmarkAblationOverlap quantifies the CPU/I-O overlap: with simulated
// device latency, four async I/O workers prefetching pages while
// enumeration proceeds should beat a single serialized reader.
func BenchmarkAblationOverlap(b *testing.B) {
	lat := core.Options{PerPageLatency: 30 * time.Microsecond, SeekLatency: 150 * time.Microsecond}
	b.Run("overlapped-4iow", func(b *testing.B) {
		o := lat
		o.IOWorkers = 4
		benchEngineQuery(b, graph.Triangle(), o)
	})
	b.Run("serialized-1iow", func(b *testing.B) {
		o := lat
		o.IOWorkers = 1
		benchEngineQuery(b, graph.Triangle(), o)
	})
}

func BenchmarkFailureBoundary(b *testing.B) { benchExperiment(b, "failures") }

// BenchmarkAblationCompression compares plain 4-byte adjacency storage with
// delta+varint compression: fewer pages means fewer reads per query.
func BenchmarkAblationCompression(b *testing.B) {
	run := func(b *testing.B, compress bool) {
		spec, err := dataset.ByName("LJ")
		if err != nil {
			b.Fatal(err)
		}
		g := spec.Generate(0.1)
		dir := b.TempDir()
		path := filepath.Join(dir, "lj.db")
		if _, err := storage.BuildFromGraph(path, g, storage.BuildOptions{PageSize: 1024, TempDir: dir, Compress: compress}); err != nil {
			b.Fatal(err)
		}
		db, err := storage.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		b.ReportMetric(float64(db.NumPages()), "pages")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng, err := core.NewEngine(db, core.Options{Threads: 2, BufferFrames: 16})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Run(graph.Clique4()); err != nil {
				b.Fatal(err)
			}
			eng.Close()
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, false) })
	b.Run("compressed", func(b *testing.B) { run(b, true) })
}

func BenchmarkCostModelValidation(b *testing.B) { benchExperiment(b, "costmodel") }
